package geom

import (
	"fmt"
	"math"
	"sort"
)

// Path is an arc-length parameterized polyline. It is the backbone of
// lane centerlines: positions along a lane are addressed by the distance s
// travelled from the path start ("station"), exactly as road coordinates
// are used in OpenDRIVE-style maps.
//
// Build a Path with NewPath (from explicit points) or with a PathBuilder
// (straights and arcs). A Path is immutable after construction.
type Path struct {
	pts []Vec2
	// cum[i] is the arc length from pts[0] to pts[i]; cum[0] == 0.
	cum []float64
	// grid accelerates Project; nil for small or non-finite paths
	// (queries then use the linear scan). Immutable after construction,
	// so concurrent queries are safe.
	grid *segGrid
}

// NewPath constructs a path through the given points. Consecutive
// duplicate points are dropped. NewPath returns an error when fewer than
// two distinct points remain.
func NewPath(points []Vec2) (*Path, error) {
	pts := make([]Vec2, 0, len(points))
	for _, p := range points {
		if len(pts) > 0 && p.DistSq(pts[len(pts)-1]) < 1e-18 {
			continue
		}
		pts = append(pts, p)
	}
	if len(pts) < 2 {
		return nil, fmt.Errorf("geom: path needs at least 2 distinct points, got %d", len(pts))
	}
	cum := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		cum[i] = cum[i-1] + pts[i].Dist(pts[i-1])
	}
	return &Path{pts: pts, cum: cum, grid: buildSegGrid(pts, cum[len(cum)-1])}, nil
}

// MustPath is NewPath but panics on error. For use in map construction
// code where the inputs are compile-time constants.
func MustPath(points []Vec2) *Path {
	p, err := NewPath(points)
	if err != nil {
		panic(err)
	}
	return p
}

// Length returns the total arc length of the path in metres.
func (p *Path) Length() float64 { return p.cum[len(p.cum)-1] }

// Bounds returns the axis-aligned bounding box of the path. Segments
// are straight, so the hull of the vertices contains the whole
// polyline.
func (p *Path) Bounds() AABB {
	out := AABB{Min: p.pts[0], Max: p.pts[0]}
	for _, v := range p.pts[1:] {
		out.Min.X = math.Min(out.Min.X, v.X)
		out.Min.Y = math.Min(out.Min.Y, v.Y)
		out.Max.X = math.Max(out.Max.X, v.X)
		out.Max.Y = math.Max(out.Max.Y, v.Y)
	}
	return out
}

// Points returns a copy of the path's vertices.
func (p *Path) Points() []Vec2 {
	out := make([]Vec2, len(p.pts))
	copy(out, p.pts)
	return out
}

// segmentAt locates the polyline segment containing station s and returns
// the segment index plus the distance into the segment. s is clamped to
// [0, Length].
func (p *Path) segmentAt(s float64) (int, float64) {
	if s <= 0 {
		return 0, 0
	}
	if s >= p.Length() {
		last := len(p.pts) - 2
		return last, p.cum[last+1] - p.cum[last]
	}
	// Binary search for the first cum > s, then step back one.
	i := sort.SearchFloat64s(p.cum, s)
	if i > 0 && p.cum[i] > s || i == len(p.cum) {
		i--
	}
	if i >= len(p.pts)-1 {
		i = len(p.pts) - 2
	}
	return i, s - p.cum[i]
}

// segmentAtHint is segmentAt seeded with a candidate segment index.
// When the station falls inside the hinted segment (or the one after
// it), the binary search is skipped entirely; the result is identical
// either way, since for s in (0, Length) there is exactly one i with
// cum[i] <= s < cum[i+1].
func (p *Path) segmentAtHint(s float64, hint int) (int, float64) {
	if s > 0 && s < p.Length() && hint >= 0 && hint <= len(p.pts)-2 && p.cum[hint] <= s {
		if s < p.cum[hint+1] {
			return hint, s - p.cum[hint]
		}
		if hint+1 <= len(p.pts)-2 && s < p.cum[hint+2] {
			return hint + 1, s - p.cum[hint+1]
		}
	}
	return p.segmentAt(s)
}

// pointAtSeg returns the world position at distance into segment i.
func (p *Path) pointAtSeg(i int, into float64) Vec2 {
	dir := p.pts[i+1].Sub(p.pts[i]).Norm()
	return p.pts[i].Add(dir.Scale(into))
}

// headingAtSeg returns the tangent direction of segment i.
func (p *Path) headingAtSeg(i int) float64 {
	return p.pts[i+1].Sub(p.pts[i]).Angle()
}

// PointAt returns the world position at station s. s is clamped to the
// path's extent.
func (p *Path) PointAt(s float64) Vec2 {
	i, into := p.segmentAt(s)
	return p.pointAtSeg(i, into)
}

// HeadingAt returns the tangent direction (radians) at station s.
func (p *Path) HeadingAt(s float64) float64 {
	i, _ := p.segmentAt(s)
	return p.headingAtSeg(i)
}

// PoseAt returns the pose (position + tangent heading) at station s.
func (p *Path) PoseAt(s float64) Pose {
	return Pose{Pos: p.PointAt(s), Yaw: p.HeadingAt(s)}
}

// Project finds the station of the point on the path closest to q and the
// signed lateral offset of q from the path (positive = left of travel
// direction). Large paths answer through the spatial index; the result
// is bit-identical to the linear scan (see projState).
func (p *Path) Project(q Vec2) (station, lateral float64) {
	_, station, lateral = p.projectIdx(q, -1)
	return station, lateral
}

// projectSeg computes the squared distance from q to segment i along
// with the projection's station and signed lateral offset. Both the
// linear reference scan and the grid-indexed search funnel their
// comparisons through this one helper, so the two code paths execute
// the same float operations on the winning segment — the foundation of
// the bit-identity the equivalence tests assert.
func (p *Path) projectSeg(i int, q Vec2) (d, station, lateral float64) {
	a, b := p.pts[i], p.pts[i+1]
	ab := b.Sub(a)
	t := Clamp(q.Sub(a).Dot(ab)/ab.LenSq(), 0, 1)
	c := a.Add(ab.Scale(t))
	d = q.DistSq(c)
	station = p.cum[i] + ab.Len()*t
	// Positive lateral when q is to the left of the segment direction.
	lateral = math.Sqrt(d)
	if ab.Cross(q.Sub(a)) < 0 {
		lateral = -lateral
	}
	return d, station, lateral
}

// projState accumulates the running minimum of a projection query. The
// winner is the lexicographic minimum of (distance, segment index),
// which is exactly what the original linear scan's strict-less update
// produced: the first segment to reach the minimal distance wins.
type projState struct {
	bestD   float64
	bestIdx int
	station float64
	lateral float64
}

// considerSeg folds segment i into the running minimum.
func (p *Path) considerSeg(st *projState, i int, q Vec2) {
	d, s, lat := p.projectSeg(i, q)
	if d < st.bestD || (d == st.bestD && i < st.bestIdx) { //lint:allow floateq exact tie-break on equal squared distance: the lower segment index must win, matching the linear scan's first-minimum rule bit for bit
		st.bestD = d
		st.bestIdx = i
		st.station = s
		st.lateral = lat
	}
}

// projectLinear is the reference full scan. It is the semantic ground
// truth the indexed query is tested against, and the fallback for small
// or non-finite paths.
func (p *Path) projectLinear(q Vec2) (idx int, station, lateral float64) {
	st := projState{bestD: math.Inf(1), bestIdx: -1}
	for i := 0; i < len(p.pts)-1; i++ {
		p.considerSeg(&st, i, q)
	}
	return st.bestIdx, st.station, st.lateral
}

// projectIdx answers a projection query, optionally seeded with a hint
// segment (a previous query's winner; actors move continuously, so the
// previous projection localizes the next one and tightens the pruning
// bound immediately). hint < 0 means no seed. The returned idx is the
// winning segment, or -1 when no segment yields a finite comparison
// (NaN inputs); station and lateral are then 0, as in the linear scan.
func (p *Path) projectIdx(q Vec2, hint int) (idx int, station, lateral float64) {
	if p.grid == nil {
		return p.projectLinear(q)
	}
	g := p.grid
	st := projState{bestD: math.Inf(1), bestIdx: -1}
	if hint >= 0 && hint < len(p.pts)-1 {
		p.considerSeg(&st, hint, q)
	}
	cx := g.cellX(q.X)
	cy := g.cellY(q.Y)
	maxR := max(max(cx, g.nx-1-cx), max(cy, g.ny-1-cy))
	for r := 0; r <= maxR; r++ {
		if st.bestIdx >= 0 {
			lb := g.ringLowerBound(q, cx, cy, r)
			// Cells at ring >= r are at least lb away; when even that
			// lower bound is strictly beyond the best distance, no
			// remaining segment can win or tie. <= keeps scanning on
			// exact equality so a tying segment with a lower index is
			// still found.
			if lb*lb > st.bestD {
				break
			}
		}
		p.scanRing(&st, q, cx, cy, r)
	}
	return st.bestIdx, st.station, st.lateral
}

// scanRing evaluates every segment registered in the cells of Chebyshev
// ring r around (cx, cy), clipped to the grid.
func (p *Path) scanRing(st *projState, q Vec2, cx, cy, r int) {
	g := p.grid
	if r == 0 {
		p.scanCell(st, q, cx, cy)
		return
	}
	x0, x1 := cx-r, cx+r
	y0, y1 := cy-r, cy+r
	for _, iy := range [2]int{y0, y1} {
		if iy < 0 || iy >= g.ny {
			continue
		}
		for ix := max(x0, 0); ix <= min(x1, g.nx-1); ix++ {
			p.scanCell(st, q, ix, iy)
		}
	}
	for _, ix := range [2]int{x0, x1} {
		if ix < 0 || ix >= g.nx {
			continue
		}
		for iy := max(y0+1, 0); iy <= min(y1-1, g.ny-1); iy++ {
			p.scanCell(st, q, ix, iy)
		}
	}
}

// scanCell evaluates the segments registered in one cell. A segment
// spanning several cells is re-evaluated harmlessly: projectSeg is pure
// and the tie-break ignores an index it has already chosen.
func (p *Path) scanCell(st *projState, q Vec2, ix, iy int) {
	g := p.grid
	c := iy*g.nx + ix
	for _, si := range g.items[g.start[c]:g.start[c+1]] {
		p.considerSeg(st, int(si), q)
	}
}

// CurvatureAt estimates signed curvature (1/m) at station s using the
// change of heading over a small window. Positive curvature turns left.
func (p *Path) CurvatureAt(s float64) float64 {
	const h = 0.5 // metres
	s0 := Clamp(s-h, 0, p.Length())
	s1 := Clamp(s+h, 0, p.Length())
	if s1-s0 < 1e-9 {
		return 0
	}
	return AngleDiff(p.HeadingAt(s1), p.HeadingAt(s0)) / (s1 - s0)
}

// Offset returns a new path displaced laterally by d metres (positive =
// left of travel direction). Used to derive parallel lanes from a
// reference line. The offset path has the same vertex count.
func (p *Path) Offset(d float64) *Path {
	pts := make([]Vec2, len(p.pts))
	for i := range p.pts {
		var dir Vec2
		switch {
		case i == 0:
			dir = p.pts[1].Sub(p.pts[0])
		case i == len(p.pts)-1:
			dir = p.pts[i].Sub(p.pts[i-1])
		default:
			dir = p.pts[i+1].Sub(p.pts[i-1])
		}
		pts[i] = p.pts[i].Add(dir.Norm().Perp().Scale(d))
	}
	return MustPath(pts)
}

// PathBuilder assembles a path from straight and arc segments, tracking
// the pen's pose. Headings are tangent-continuous by construction.
type PathBuilder struct {
	pose Pose
	pts  []Vec2
	step float64 // arc tessellation step in metres
}

// NewPathBuilder starts a builder at the given pose. Arcs are tessellated
// at roughly 1 m spacing.
func NewPathBuilder(start Pose) *PathBuilder {
	return &PathBuilder{pose: start, pts: []Vec2{start.Pos}, step: 1}
}

// Pose returns the builder's current pen pose.
func (b *PathBuilder) Pose() Pose { return b.pose }

// Straight extends the path by length metres along the current heading.
func (b *PathBuilder) Straight(length float64) *PathBuilder {
	if length <= 0 {
		return b
	}
	b.pose.Pos = b.pose.Pos.Add(b.pose.Forward().Scale(length))
	b.pts = append(b.pts, b.pose.Pos)
	return b
}

// Arc extends the path along a circular arc of the given radius, turning
// by angle radians (positive = left). The arc is tessellated.
func (b *PathBuilder) Arc(radius, angle float64) *PathBuilder {
	if radius <= 0 || angle == 0 { //lint:allow floateq exact-zero angle is the no-op sentinel; any nonzero angle, however small, is a real arc
		return b
	}
	arcLen := math.Abs(angle) * radius
	n := int(math.Ceil(arcLen / b.step))
	if n < 2 {
		n = 2
	}
	// Center of the turn circle is perpendicular to heading.
	side := 1.0
	if angle < 0 {
		side = -1
	}
	center := b.pose.Pos.Add(b.pose.Forward().Perp().Scale(side * radius))
	start := b.pose.Pos.Sub(center)
	for i := 1; i <= n; i++ {
		a := angle * float64(i) / float64(n)
		b.pts = append(b.pts, center.Add(start.Rotate(a)))
	}
	b.pose.Pos = b.pts[len(b.pts)-1]
	b.pose.Yaw = NormalizeAngle(b.pose.Yaw + angle)
	return b
}

// Build finalizes the path. The builder must have accumulated at least
// one segment.
func (b *PathBuilder) Build() (*Path, error) {
	return NewPath(b.pts)
}

// MustBuild is Build but panics on error.
func (b *PathBuilder) MustBuild() *Path {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
