package geom

import (
	"fmt"
	"math"
	"sort"
)

// Path is an arc-length parameterized polyline. It is the backbone of
// lane centerlines: positions along a lane are addressed by the distance s
// travelled from the path start ("station"), exactly as road coordinates
// are used in OpenDRIVE-style maps.
//
// Build a Path with NewPath (from explicit points) or with a PathBuilder
// (straights and arcs). A Path is immutable after construction.
type Path struct {
	pts []Vec2
	// cum[i] is the arc length from pts[0] to pts[i]; cum[0] == 0.
	cum []float64
}

// NewPath constructs a path through the given points. Consecutive
// duplicate points are dropped. NewPath returns an error when fewer than
// two distinct points remain.
func NewPath(points []Vec2) (*Path, error) {
	pts := make([]Vec2, 0, len(points))
	for _, p := range points {
		if len(pts) > 0 && p.DistSq(pts[len(pts)-1]) < 1e-18 {
			continue
		}
		pts = append(pts, p)
	}
	if len(pts) < 2 {
		return nil, fmt.Errorf("geom: path needs at least 2 distinct points, got %d", len(pts))
	}
	cum := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		cum[i] = cum[i-1] + pts[i].Dist(pts[i-1])
	}
	return &Path{pts: pts, cum: cum}, nil
}

// MustPath is NewPath but panics on error. For use in map construction
// code where the inputs are compile-time constants.
func MustPath(points []Vec2) *Path {
	p, err := NewPath(points)
	if err != nil {
		panic(err)
	}
	return p
}

// Length returns the total arc length of the path in metres.
func (p *Path) Length() float64 { return p.cum[len(p.cum)-1] }

// Points returns a copy of the path's vertices.
func (p *Path) Points() []Vec2 {
	out := make([]Vec2, len(p.pts))
	copy(out, p.pts)
	return out
}

// segmentAt locates the polyline segment containing station s and returns
// the segment index plus the distance into the segment. s is clamped to
// [0, Length].
func (p *Path) segmentAt(s float64) (int, float64) {
	if s <= 0 {
		return 0, 0
	}
	if s >= p.Length() {
		last := len(p.pts) - 2
		return last, p.cum[last+1] - p.cum[last]
	}
	// Binary search for the first cum > s, then step back one.
	i := sort.SearchFloat64s(p.cum, s)
	if i > 0 && p.cum[i] > s || i == len(p.cum) {
		i--
	}
	if i >= len(p.pts)-1 {
		i = len(p.pts) - 2
	}
	return i, s - p.cum[i]
}

// PointAt returns the world position at station s. s is clamped to the
// path's extent.
func (p *Path) PointAt(s float64) Vec2 {
	i, into := p.segmentAt(s)
	dir := p.pts[i+1].Sub(p.pts[i]).Norm()
	return p.pts[i].Add(dir.Scale(into))
}

// HeadingAt returns the tangent direction (radians) at station s.
func (p *Path) HeadingAt(s float64) float64 {
	i, _ := p.segmentAt(s)
	return p.pts[i+1].Sub(p.pts[i]).Angle()
}

// PoseAt returns the pose (position + tangent heading) at station s.
func (p *Path) PoseAt(s float64) Pose {
	return Pose{Pos: p.PointAt(s), Yaw: p.HeadingAt(s)}
}

// Project finds the station of the point on the path closest to q and the
// signed lateral offset of q from the path (positive = left of travel
// direction).
func (p *Path) Project(q Vec2) (station, lateral float64) {
	bestDistSq := math.Inf(1)
	for i := 0; i < len(p.pts)-1; i++ {
		a, b := p.pts[i], p.pts[i+1]
		ab := b.Sub(a)
		t := Clamp(q.Sub(a).Dot(ab)/ab.LenSq(), 0, 1)
		c := a.Add(ab.Scale(t))
		d := q.DistSq(c)
		if d < bestDistSq {
			bestDistSq = d
			station = p.cum[i] + ab.Len()*t
			// Positive lateral when q is to the left of the segment
			// direction.
			lateral = math.Sqrt(d)
			if ab.Cross(q.Sub(a)) < 0 {
				lateral = -lateral
			}
		}
	}
	return station, lateral
}

// CurvatureAt estimates signed curvature (1/m) at station s using the
// change of heading over a small window. Positive curvature turns left.
func (p *Path) CurvatureAt(s float64) float64 {
	const h = 0.5 // metres
	s0 := Clamp(s-h, 0, p.Length())
	s1 := Clamp(s+h, 0, p.Length())
	if s1-s0 < 1e-9 {
		return 0
	}
	return AngleDiff(p.HeadingAt(s1), p.HeadingAt(s0)) / (s1 - s0)
}

// Offset returns a new path displaced laterally by d metres (positive =
// left of travel direction). Used to derive parallel lanes from a
// reference line. The offset path has the same vertex count.
func (p *Path) Offset(d float64) *Path {
	pts := make([]Vec2, len(p.pts))
	for i := range p.pts {
		var dir Vec2
		switch {
		case i == 0:
			dir = p.pts[1].Sub(p.pts[0])
		case i == len(p.pts)-1:
			dir = p.pts[i].Sub(p.pts[i-1])
		default:
			dir = p.pts[i+1].Sub(p.pts[i-1])
		}
		pts[i] = p.pts[i].Add(dir.Norm().Perp().Scale(d))
	}
	return MustPath(pts)
}

// PathBuilder assembles a path from straight and arc segments, tracking
// the pen's pose. Headings are tangent-continuous by construction.
type PathBuilder struct {
	pose Pose
	pts  []Vec2
	step float64 // arc tessellation step in metres
}

// NewPathBuilder starts a builder at the given pose. Arcs are tessellated
// at roughly 1 m spacing.
func NewPathBuilder(start Pose) *PathBuilder {
	return &PathBuilder{pose: start, pts: []Vec2{start.Pos}, step: 1}
}

// Pose returns the builder's current pen pose.
func (b *PathBuilder) Pose() Pose { return b.pose }

// Straight extends the path by length metres along the current heading.
func (b *PathBuilder) Straight(length float64) *PathBuilder {
	if length <= 0 {
		return b
	}
	b.pose.Pos = b.pose.Pos.Add(b.pose.Forward().Scale(length))
	b.pts = append(b.pts, b.pose.Pos)
	return b
}

// Arc extends the path along a circular arc of the given radius, turning
// by angle radians (positive = left). The arc is tessellated.
func (b *PathBuilder) Arc(radius, angle float64) *PathBuilder {
	if radius <= 0 || angle == 0 { //lint:allow floateq exact-zero angle is the no-op sentinel; any nonzero angle, however small, is a real arc
		return b
	}
	arcLen := math.Abs(angle) * radius
	n := int(math.Ceil(arcLen / b.step))
	if n < 2 {
		n = 2
	}
	// Center of the turn circle is perpendicular to heading.
	side := 1.0
	if angle < 0 {
		side = -1
	}
	center := b.pose.Pos.Add(b.pose.Forward().Perp().Scale(side * radius))
	start := b.pose.Pos.Sub(center)
	for i := 1; i <= n; i++ {
		a := angle * float64(i) / float64(n)
		b.pts = append(b.pts, center.Add(start.Rotate(a)))
	}
	b.pose.Pos = b.pts[len(b.pts)-1]
	b.pose.Yaw = NormalizeAngle(b.pose.Yaw + angle)
	return b
}

// Build finalizes the path. The builder must have accumulated at least
// one segment.
func (b *PathBuilder) Build() (*Path, error) {
	return NewPath(b.pts)
}

// MustBuild is Build but panics on error.
func (b *PathBuilder) MustBuild() *Path {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
