package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecApprox(a, b Vec2, tol float64) bool {
	return approx(a.X, b.X, tol) && approx(a.Y, b.Y, tol)
}

func TestVecBasicOps(t *testing.T) {
	a, b := V(3, 4), V(1, -2)
	if got := a.Add(b); got != V(4, 2) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != 3*(-2)-4*1 {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := a.LenSq(); got != 25 {
		t.Errorf("LenSq = %v", got)
	}
}

func TestNormZeroVector(t *testing.T) {
	if got := (Vec2{}).Norm(); got != (Vec2{}) {
		t.Fatalf("Norm of zero = %v, want zero", got)
	}
}

func TestPerpIsOrthogonalAndCCW(t *testing.T) {
	v := V(2, 1)
	p := v.Perp()
	if v.Dot(p) != 0 {
		t.Fatalf("Perp not orthogonal: dot = %v", v.Dot(p))
	}
	if v.Cross(p) <= 0 {
		t.Fatalf("Perp not CCW: cross = %v", v.Cross(p))
	}
}

func TestRotateQuarterTurn(t *testing.T) {
	got := V(1, 0).Rotate(math.Pi / 2)
	if !vecApprox(got, V(0, 1), eps) {
		t.Fatalf("Rotate(π/2) = %v, want (0,1)", got)
	}
}

func TestRotatePreservesLength(t *testing.T) {
	f := func(x, y, yaw float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(yaw) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(yaw, 0) {
			return true
		}
		// Limit magnitude so floating error stays bounded.
		x, y = math.Mod(x, 1e6), math.Mod(y, 1e6)
		v := V(x, y)
		r := v.Rotate(yaw)
		return approx(v.Len(), r.Len(), 1e-6*(1+v.Len()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeAngleRange(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 1e4)
		n := NormalizeAngle(a)
		return n > -math.Pi-eps && n <= math.Pi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeAngleIdentity(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi / 2, math.Pi / 2},
		{2 * math.Pi, 0},
		{3 * math.Pi, math.Pi},
		{-3 * math.Pi, math.Pi},
		{-math.Pi / 4, -math.Pi / 4},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !approx(got, c.want, eps) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, -0.1); !approx(got, 0.2, eps) {
		t.Errorf("AngleDiff = %v, want 0.2", got)
	}
	// Across the ±π seam.
	if got := AngleDiff(math.Pi-0.1, -math.Pi+0.1); !approx(got, -0.2, eps) {
		t.Errorf("AngleDiff across seam = %v, want -0.2", got)
	}
}

func TestPoseTransformRoundTrip(t *testing.T) {
	f := func(px, py, yaw, lx, ly float64) bool {
		for _, v := range []float64{px, py, yaw, lx, ly} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		px, py = math.Mod(px, 1e4), math.Mod(py, 1e4)
		lx, ly = math.Mod(lx, 1e4), math.Mod(ly, 1e4)
		p := Pose{Pos: V(px, py), Yaw: yaw}
		local := V(lx, ly)
		back := p.InversePoint(p.TransformPoint(local))
		return vecApprox(local, back, 1e-6*(1+local.Len()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoseForwardRight(t *testing.T) {
	p := Pose{Yaw: math.Pi / 2} // facing +Y
	if !vecApprox(p.Forward(), V(0, 1), eps) {
		t.Errorf("Forward = %v", p.Forward())
	}
	if !vecApprox(p.Right(), V(1, 0), eps) {
		t.Errorf("Right = %v", p.Right())
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0), V(10, 20)
	if got := a.Lerp(b, 0.5); !vecApprox(got, V(5, 10), eps) {
		t.Fatalf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Fatalf("Lerp(1) = %v", got)
	}
}
