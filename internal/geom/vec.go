// Package geom provides the 2-D geometry primitives used by the driving
// simulator: vectors, poses, arc-length parameterized paths, and oriented
// bounding boxes with intersection tests.
//
// Conventions: the world is a right-handed X/Y plane in metres. Yaw is
// measured in radians counter-clockwise from the +X axis. All types are
// plain values; none require construction beyond their literal.
package geom

import "math"

// Vec2 is a 2-D vector or point in metres.
type Vec2 struct {
	X, Y float64
}

// V is shorthand for Vec2{x, y}.
func V(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v · o.
func (v Vec2) Dot(o Vec2) float64 { return v.X*o.X + v.Y*o.Y }

// Cross returns the 2-D cross product (z component of v × o).
func (v Vec2) Cross(o Vec2) float64 { return v.X*o.Y - v.Y*o.X }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// LenSq returns the squared length of v, avoiding a sqrt.
func (v Vec2) LenSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and o.
func (v Vec2) Dist(o Vec2) float64 { return v.Sub(o).Len() }

// DistSq returns the squared distance between v and o.
func (v Vec2) DistSq(o Vec2) float64 { return v.Sub(o).LenSq() }

// Norm returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec2) Norm() Vec2 {
	l := v.Len()
	if l == 0 { //lint:allow floateq only exactly-zero length is singular (0/0 -> NaN); tiny vectors still normalize
		return Vec2{}
	}
	return v.Scale(1 / l)
}

// Perp returns v rotated +90° (counter-clockwise).
func (v Vec2) Perp() Vec2 { return Vec2{-v.Y, v.X} }

// Rotate returns v rotated by yaw radians counter-clockwise.
func (v Vec2) Rotate(yaw float64) Vec2 {
	s, c := math.Sincos(yaw)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Angle returns the angle of v from the +X axis in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Lerp returns the linear interpolation between v and o at fraction t
// (t = 0 yields v; t = 1 yields o). t is not clamped.
func (v Vec2) Lerp(o Vec2, t float64) Vec2 {
	return Vec2{v.X + (o.X-v.X)*t, v.Y + (o.Y-v.Y)*t}
}

// UnitFromAngle returns the unit vector at the given yaw.
func UnitFromAngle(yaw float64) Vec2 {
	s, c := math.Sincos(yaw)
	return Vec2{c, s}
}

// Pose is a position plus heading.
type Pose struct {
	Pos Vec2
	Yaw float64 // radians, CCW from +X
}

// Forward returns the unit vector the pose faces.
func (p Pose) Forward() Vec2 { return UnitFromAngle(p.Yaw) }

// Right returns the unit vector to the pose's right-hand side.
func (p Pose) Right() Vec2 { return UnitFromAngle(p.Yaw - math.Pi/2) }

// TransformPoint maps a point from the pose's local frame (x forward,
// y left) into the world frame.
func (p Pose) TransformPoint(local Vec2) Vec2 {
	return p.Pos.Add(local.Rotate(p.Yaw))
}

// InversePoint maps a world point into the pose's local frame.
func (p Pose) InversePoint(world Vec2) Vec2 {
	return world.Sub(p.Pos).Rotate(-p.Yaw)
}

// NormalizeAngle wraps a to (-π, π].
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	switch {
	case a > math.Pi:
		a -= 2 * math.Pi
	case a <= -math.Pi:
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the smallest signed rotation from b to a, in
// (-π, π].
func AngleDiff(a, b float64) float64 { return NormalizeAngle(a - b) }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
