package bridge

import (
	"math"
	"testing"
	"time"

	"teledrive/internal/geom"
	"teledrive/internal/netem"
	"teledrive/internal/sensors"
	"teledrive/internal/simclock"
	"teledrive/internal/transport"
	"teledrive/internal/vehicle"
	"teledrive/internal/world"
)

func testSession(t *testing.T) (*simclock.Clock, *Session, *world.World, *world.Actor) {
	t.Helper()
	ref := geom.MustPath([]geom.Vec2{geom.V(0, 0), geom.V(2000, 0)})
	m := &world.RoadMap{Name: "straight", Reference: ref, Lanes: []*world.Lane{
		{ID: "d1", Center: ref, Width: 3.5},
	}}
	w := world.New(m)
	ego, err := w.SpawnEgo(vehicle.Sedan(), geom.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	sess, err := NewSession(clk, w, ego, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return clk, sess, w, ego
}

func TestControlCodecRoundTrip(t *testing.T) {
	cases := []vehicle.Control{
		{},
		{Throttle: 0.75, Steer: -0.3, Brake: 0.1},
		{Throttle: 1, Steer: 1, Brake: 1, Reverse: true, HandBrake: true},
		{Reverse: true},
	}
	for _, c := range cases {
		got, err := UnmarshalControl(MarshalControl(c))
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("round trip: got %+v, want %+v", got, c)
		}
	}
}

func TestControlCodecRejectsBad(t *testing.T) {
	if _, err := UnmarshalControl([]byte{1, 2, 3}); err == nil {
		t.Fatal("short control accepted")
	}
	buf := MarshalControl(vehicle.Control{Throttle: math.NaN()})
	if _, err := UnmarshalControl(buf); err == nil {
		t.Fatal("NaN control accepted")
	}
}

func TestFramesFlowToClient(t *testing.T) {
	clk, sess, _, _ := testSession(t)
	sess.Server.Start()
	var frames int
	sess.Client.OnFrame = func(v sensors.WorldView, lat time.Duration) { frames++ }
	clk.Advance(time.Second)
	// ≈28 fps → ≈27 frames in the first second.
	if frames < 20 || frames > 30 {
		t.Fatalf("frames in 1s = %d, want ≈28", frames)
	}
	view, ok := sess.Client.Frame()
	if !ok {
		t.Fatal("no frame displayed")
	}
	if view.Ego.Kind != world.KindEgo {
		t.Fatalf("frame ego = %+v", view.Ego)
	}
}

func TestControlLoopDrivesVehicle(t *testing.T) {
	clk, sess, _, ego := testSession(t)
	sess.Server.Start()
	// Operator holds full throttle, re-sent every 50 ms like a real
	// station polling its pedals.
	var resend func(now time.Duration)
	resend = func(now time.Duration) {
		if err := sess.Client.SendControl(vehicle.Control{Throttle: 1}); err != nil {
			t.Errorf("send control: %v", err)
		}
		clk.Schedule(50*time.Millisecond, resend)
	}
	clk.Schedule(0, resend)
	clk.Advance(5 * time.Second)
	if speed := ego.Speed(); speed < 10 {
		t.Fatalf("ego speed after 5s remote throttle = %v", speed)
	}
	if got := sess.Server.Stats().ControlsApplied; got == 0 {
		t.Fatal("no controls applied")
	}
}

func TestFrameAgeGrowsUnderDelayFault(t *testing.T) {
	clk, sess, _, _ := testSession(t)
	sess.Server.Start()
	clk.Advance(500 * time.Millisecond)
	baseline := sess.Client.FrameAge()

	if err := sess.Conn.Links.ApplyBoth(netem.Rule{Delay: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	faulty := sess.Client.FrameAge()
	// The displayed frame is at least the injected one-way delay old
	// (baseline only reflects the frame-period sampling phase).
	if faulty < 50*time.Millisecond {
		t.Fatalf("frame age under 50ms delay = %v, baseline %v", faulty, baseline)
	}
	if lat := sess.Client.FrameLatency(); lat < 50*time.Millisecond {
		t.Fatalf("frame latency = %v, want ≥ 50ms", lat)
	}
}

func TestStaleFramesDiscarded(t *testing.T) {
	// Stale frames can only reach the client in datagram mode; the
	// reliable channel delivers in order by construction.
	ref := geom.MustPath([]geom.Vec2{geom.V(0, 0), geom.V(2000, 0)})
	m := &world.RoadMap{Name: "straight", Reference: ref, Lanes: []*world.Lane{
		{ID: "d1", Center: ref, Width: 3.5},
	}}
	w := world.New(m)
	ego, err := w.SpawnEgo(vehicle.Sedan(), geom.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	sess, err := NewSessionWithTransport(clk, w, ego, 1234, transport.Options{Name: "dgram", Reliable: false})
	if err != nil {
		t.Fatal(err)
	}
	// Single-fragment frames so wire-level duplication/reordering can
	// surface whole stale frames (multi-fragment messages are absorbed
	// by the reassembler).
	sess.Server.Camera().VideoFrameBytes = 0
	sess.Server.Start()
	// Strong jitter reorders whole frames on the wire.
	sess.Conn.Links.Down.AddRule(netem.Rule{Delay: 30 * time.Millisecond, Jitter: 28 * time.Millisecond, Duplicate: 0.3})
	var lastFrame uint64
	monotonic := true
	sess.Client.OnFrame = func(v sensors.WorldView, _ time.Duration) {
		if v.Frame <= lastFrame && lastFrame != 0 {
			monotonic = false
		}
		lastFrame = v.Frame
	}
	clk.Advance(5 * time.Second)
	if !monotonic {
		t.Fatal("displayed frames went backwards")
	}
	if sess.Client.Stats().FramesStale == 0 {
		t.Fatal("expected stale frames under duplication+jitter")
	}
}

func TestCollisionEventReachesClient(t *testing.T) {
	clk, sess, w, ego := testSession(t)
	rail, err := world.NewRail(w.Map.Reference, 15, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.SpawnScripted(world.KindParkedCar, "wall", geom.V(4.7, 1.9), rail); err != nil {
		t.Fatal(err)
	}
	sess.Server.Start()
	var collisions []CollisionWire
	sess.Client.OnCollision = func(ev CollisionWire) { collisions = append(collisions, ev) }
	ego.Plant.Apply(vehicle.Control{Throttle: 1})
	clk.Advance(5 * time.Second)
	if len(collisions) != 1 {
		t.Fatalf("collisions at client = %d, want 1", len(collisions))
	}
	if collisions[0].Actor != ego.ID && collisions[0].Other != ego.ID {
		t.Fatalf("collision actors: %+v", collisions[0])
	}
}

func TestLaneInvasionEventReachesClient(t *testing.T) {
	clk, sess, _, ego := testSession(t)
	sess.Server.Start()
	var events []LaneInvasionWire
	sess.Client.OnLaneInvasion = func(ev LaneInvasionWire) { events = append(events, ev) }
	ego.Plant.SetState(vehicle.State{Pose: geom.Pose{Yaw: 0.3}, Speed: 15})
	clk.Advance(3 * time.Second)
	if len(events) == 0 {
		t.Fatal("no lane-invasion events at client")
	}
	if events[0].Kind != "departed" && events[0].Kind != "crossed" {
		t.Fatalf("event kind = %q", events[0].Kind)
	}
}

func TestMetaPing(t *testing.T) {
	clk, sess, _, _ := testSession(t)
	sess.Server.Start()
	var replies []MetaReply
	sess.Client.OnMetaReply = func(r MetaReply) { replies = append(replies, r) }
	seq, err := sess.Client.SendMeta("ping", nil)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(100 * time.Millisecond)
	if len(replies) != 1 || replies[0].Seq != seq || !replies[0].OK {
		t.Fatalf("replies = %+v", replies)
	}
	if replies[0].Data["time_ns"] == "" {
		t.Fatal("ping reply missing time")
	}
}

func TestMetaSetWeatherAndFrameInterval(t *testing.T) {
	clk, sess, _, _ := testSession(t)
	sess.Server.Start()
	sess.Client.SendMeta("set_weather", map[string]string{"weather": "night"})
	sess.Client.SendMeta("set_frame_interval", map[string]string{"interval": "50ms"})
	clk.Advance(100 * time.Millisecond)
	if got := sess.Server.Weather(); got != "night" {
		t.Fatalf("weather = %q", got)
	}
	if got := sess.Server.FrameInterval(); got != 50*time.Millisecond {
		t.Fatalf("frame interval = %v", got)
	}
}

func TestMetaErrors(t *testing.T) {
	clk, sess, _, _ := testSession(t)
	sess.Server.Start()
	var replies []MetaReply
	sess.Client.OnMetaReply = func(r MetaReply) { replies = append(replies, r) }
	sess.Client.SendMeta("no_such_command", nil)
	sess.Client.SendMeta("set_weather", nil)
	sess.Client.SendMeta("set_frame_interval", map[string]string{"interval": "bogus"})
	clk.Advance(100 * time.Millisecond)
	if len(replies) != 3 {
		t.Fatalf("replies = %d", len(replies))
	}
	for i, r := range replies {
		if r.OK {
			t.Fatalf("reply %d unexpectedly OK: %+v", i, r)
		}
	}
}

func TestServerStopHaltsLoops(t *testing.T) {
	clk, sess, w, _ := testSession(t)
	sess.Server.Start()
	clk.Advance(500 * time.Millisecond)
	frameAtStop := w.Frame()
	sess.Server.Stop()
	clk.Advance(time.Second)
	if got := w.Frame(); got > frameAtStop+1 {
		t.Fatalf("world kept stepping after Stop: %d -> %d", frameAtStop, got)
	}
}

func TestServerOnTickRuns(t *testing.T) {
	clk, sess, _, _ := testSession(t)
	ticks := 0
	sess.Server.OnTick = func(time.Duration) { ticks++ }
	sess.Server.Start()
	clk.Advance(time.Second)
	if ticks != 50 {
		t.Fatalf("ticks = %d, want 50", ticks)
	}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewServer(nil, nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
	if _, err := NewClient(nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		MsgFrame: "frame", MsgCollision: "collision", MsgLaneInvasion: "lane-invasion",
		MsgControl: "control", MsgMeta: "meta", MsgMetaReply: "meta-reply",
		MsgDeltaFrame: "delta-frame",
	}
	for typ, want := range names {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if MsgType(99).String() == "" {
		t.Fatal("unknown type should render")
	}
}

func TestFramesDroppedUnderBlackhole(t *testing.T) {
	clk, sess, _, _ := testSession(t)
	sess.Server.Start()
	sess.Conn.Links.Down.AddRule(netem.Rule{Loss: 1})
	clk.Advance(10 * time.Second)
	st := sess.Server.Stats()
	if st.FramesDropped == 0 {
		t.Fatalf("no frames dropped under blackhole: %+v", st)
	}
}

func TestNightWeatherReducesCameraRange(t *testing.T) {
	clk, sess, _, _ := testSession(t)
	sess.Server.Start()
	if got := sess.Server.Camera().Range; got != 150 {
		t.Fatalf("day range = %v", got)
	}
	sess.Client.SendMeta("set_weather", map[string]string{"weather": "clear-night"})
	clk.Advance(100 * time.Millisecond)
	if got := sess.Server.Camera().Range; got != 90 {
		t.Fatalf("night range = %v, want 90", got)
	}
	sess.Client.SendMeta("set_weather", map[string]string{"weather": "clear-day"})
	clk.Advance(100 * time.Millisecond)
	if got := sess.Server.Camera().Range; got != 150 {
		t.Fatalf("back-to-day range = %v", got)
	}
}

// TestUnknownMessageKindsRejected pins the exhaustive-envelope contract
// on both bridge endpoints: a message kind the peer must never receive
// — or one this build does not know at all — is counted as a protocol
// error, not silently dropped. Protocol drift (a new kind added on one
// side only) then shows up in stats instead of vanishing.
func TestUnknownMessageKindsRejected(t *testing.T) {
	_, sess, _, _ := testSession(t)

	// Server side: client→server kinds are fine, server→client kinds and
	// unknown kinds are protocol errors.
	sess.Server.handleMessage(envelope(MsgFrame, []byte("{}")))
	sess.Server.handleMessage(envelope(MsgMetaReply, []byte("{}")))
	sess.Server.handleMessage(envelope(MsgType(0xEE), nil))
	sess.Server.handleMessage(nil) // malformed: empty payload
	if got := sess.Server.Stats().ProtocolErrors; got != 4 {
		t.Fatalf("server ProtocolErrors = %d, want 4", got)
	}

	// Client side: mirror image.
	sess.Client.handleMessage(envelope(MsgControl, MarshalControl(vehicle.Control{})), 0)
	sess.Client.handleMessage(envelope(MsgMeta, []byte("{}")), 0)
	sess.Client.handleMessage(envelope(MsgType(0xEE), nil), 0)
	sess.Client.handleMessage(nil, 0)
	if got := sess.Client.Stats().ProtocolErrors; got != 4 {
		t.Fatalf("client ProtocolErrors = %d, want 4", got)
	}

	// A malformed body on a known kind counts too.
	sess.Server.handleMessage(envelope(MsgControl, []byte("bogus")))
	if got := sess.Server.Stats().ProtocolErrors; got != 5 {
		t.Fatalf("server ProtocolErrors after bad control = %d, want 5", got)
	}

	// Legitimate traffic does not move the counter.
	sess.Client.SendControl(vehicle.Control{Throttle: 0.5})
	if got := sess.Client.Stats().ProtocolErrors; got != 4 {
		t.Fatalf("client ProtocolErrors after valid send = %d, want 4", got)
	}
}
