package bridge

import (
	"testing"
	"time"

	"teledrive/internal/geom"
	"teledrive/internal/netem"
	"teledrive/internal/sensors"
	"teledrive/internal/simclock"
	"teledrive/internal/telemetry"
	"teledrive/internal/transport"
	"teledrive/internal/vehicle"
	"teledrive/internal/world"
)

// cruise is a steady partial-throttle command: the ego moves every tick,
// so consecutive views differ and diffs carry real field updates.
func cruise() vehicle.Control { return vehicle.Control{Throttle: 0.4} }

// datagramSession is testSession over an unreliable transport, for tests
// that need real wire-level loss to reach the bridge endpoints.
func datagramSession(t *testing.T) (*simclock.Clock, *Session, *world.World, *world.Actor) {
	t.Helper()
	ref := geom.MustPath([]geom.Vec2{geom.V(0, 0), geom.V(2000, 0)})
	m := &world.RoadMap{Name: "straight", Reference: ref, Lanes: []*world.Lane{
		{ID: "d1", Center: ref, Width: 3.5},
	}}
	w := world.New(m)
	ego, err := w.SpawnEgo(vehicle.Sedan(), geom.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	sess, err := NewSessionWithTransport(clk, w, ego, 4321, transport.Options{Name: "dgram", Reliable: false})
	if err != nil {
		t.Fatal(err)
	}
	return clk, sess, w, ego
}

// TestMetaCommandMatrix walks the whole handleMeta surface through the
// wire — request in, reply out, server state checked — so a new command
// (or a regression in an old one) cannot hide behind the happy-path
// tests above.
func TestMetaCommandMatrix(t *testing.T) {
	cases := []struct {
		name   string
		cmd    string
		args   map[string]string
		wantOK bool
		check  func(t *testing.T, s *Server, r MetaReply)
	}{
		{
			name: "ping", cmd: "ping", wantOK: true,
			check: func(t *testing.T, s *Server, r MetaReply) {
				if r.Data["time_ns"] == "" {
					t.Fatal("ping reply missing time_ns")
				}
			},
		},
		{
			name: "set_weather night shrinks camera range", cmd: "set_weather",
			args: map[string]string{"weather": "rain-night"}, wantOK: true,
			check: func(t *testing.T, s *Server, r MetaReply) {
				if s.Weather() != "rain-night" || s.Camera().Range != 90 {
					t.Fatalf("weather=%q range=%v, want rain-night/90", s.Weather(), s.Camera().Range)
				}
			},
		},
		{
			name: "set_weather day restores camera range", cmd: "set_weather",
			args: map[string]string{"weather": "clear-day"}, wantOK: true,
			check: func(t *testing.T, s *Server, r MetaReply) {
				if s.Weather() != "clear-day" || s.Camera().Range != 150 {
					t.Fatalf("weather=%q range=%v, want clear-day/150", s.Weather(), s.Camera().Range)
				}
			},
		},
		{
			name: "set_weather missing arg", cmd: "set_weather", wantOK: false,
			check: func(t *testing.T, s *Server, r MetaReply) {
				if s.Weather() != "clear-day" {
					t.Fatalf("rejected set_weather still changed state: %q", s.Weather())
				}
			},
		},
		{
			name: "set_frame_interval accepts valid", cmd: "set_frame_interval",
			args: map[string]string{"interval": "48ms"}, wantOK: true,
			check: func(t *testing.T, s *Server, r MetaReply) {
				if got := s.FrameInterval(); got != 48*time.Millisecond {
					t.Fatalf("frame interval = %v, want 48ms", got)
				}
			},
		},
		{
			name: "set_frame_interval rejects unparsable", cmd: "set_frame_interval",
			args: map[string]string{"interval": "fast"}, wantOK: false,
			check: func(t *testing.T, s *Server, r MetaReply) {
				if got := s.FrameInterval(); got != 48*time.Millisecond {
					t.Fatalf("rejected interval still applied: %v", got)
				}
			},
		},
		{
			// Regression: zero and negative intervals parse fine, so the
			// meta path must hit the same guard SetFrameInterval uses —
			// before the fix it wrote the value straight through.
			name: "set_frame_interval rejects zero", cmd: "set_frame_interval",
			args: map[string]string{"interval": "0s"}, wantOK: false,
			check: func(t *testing.T, s *Server, r MetaReply) {
				if got := s.FrameInterval(); got != 48*time.Millisecond {
					t.Fatalf("zero interval applied: %v", got)
				}
			},
		},
		{
			name: "set_frame_interval rejects negative", cmd: "set_frame_interval",
			args: map[string]string{"interval": "-20ms"}, wantOK: false,
			check: func(t *testing.T, s *Server, r MetaReply) {
				if got := s.FrameInterval(); got != 48*time.Millisecond {
					t.Fatalf("negative interval applied: %v", got)
				}
			},
		},
		{
			name: "request_keyframe forces the next frame full", cmd: "request_keyframe",
			wantOK: true,
			check: func(t *testing.T, s *Server, r MetaReply) {
				if !s.forceKey {
					t.Fatal("request_keyframe did not arm forceKey")
				}
			},
		},
		{
			name: "get_stats surfaces the loss counters", cmd: "get_stats", wantOK: true,
			check: func(t *testing.T, s *Server, r MetaReply) {
				for _, k := range []string{
					"frames_sent", "frames_dropped", "deltas_sent",
					"events_sent", "events_dropped", "weather",
				} {
					if _, ok := r.Data[k]; !ok {
						t.Errorf("get_stats missing %q: %+v", k, r.Data)
					}
				}
			},
		},
		{
			name: "unknown command errors", cmd: "warp_reality", wantOK: false,
			check: func(t *testing.T, s *Server, r MetaReply) {
				if r.Error == "" {
					t.Fatal("unknown command reply has no error text")
				}
			},
		},
	}

	clk, sess, _, _ := testSession(t)
	sess.Server.Start()
	var last MetaReply
	sess.Client.OnMetaReply = func(r MetaReply) { last = r }
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := sess.Client.SendMeta(tc.cmd, tc.args)
			if err != nil {
				t.Fatal(err)
			}
			clk.Advance(100 * time.Millisecond)
			if last.Seq != seq {
				t.Fatalf("no reply for seq %d (last %d)", seq, last.Seq)
			}
			if last.OK != tc.wantOK {
				t.Fatalf("reply OK = %v, want %v (%+v)", last.OK, tc.wantOK, last)
			}
			tc.check(t, sess.Server, last)
		})
	}
	if got := sess.Server.Stats().MetasHandled; got != uint64(len(cases)) {
		t.Fatalf("MetasHandled = %d, want %d", got, len(cases))
	}
}

// TestServerStopIdempotent pins Stop's contract with timers still armed:
// calling it repeatedly mid-flight halts the loops exactly once, and a
// later Start revives them.
func TestServerStopIdempotent(t *testing.T) {
	clk, sess, w, _ := testSession(t)
	sess.Server.Start()
	// Stop between ticks: both owned timers are armed and will still
	// fire — the stopped flag must swallow those callbacks.
	clk.Advance(PhysicsTick/2 + 250*time.Millisecond)
	frameAtStop := w.Frame()
	sess.Server.Stop()
	sess.Server.Stop()
	clk.Advance(time.Second)
	sess.Server.Stop()
	if got := w.Frame(); got > frameAtStop+1 {
		t.Fatalf("world kept stepping after repeated Stop: %d -> %d", frameAtStop, got)
	}
	framesSent := sess.Server.Stats().FramesSent
	clk.Advance(time.Second)
	if got := sess.Server.Stats().FramesSent; got != framesSent {
		t.Fatalf("camera kept sending after Stop: %d -> %d", framesSent, got)
	}
	// Start after Stop re-arms the loops.
	sess.Server.Start()
	clk.Advance(time.Second)
	if got := w.Frame(); got <= frameAtStop+1 {
		t.Fatal("Start after Stop did not revive the physics loop")
	}
	if got := sess.Server.Stats().FramesSent; got <= framesSent {
		t.Fatal("Start after Stop did not revive the camera loop")
	}
}

// TestEventsDroppedCounted pins satellite #1: a sensor event that cannot
// be delivered (send window full under a blackhole) increments
// EventsDropped — in stats, telemetry, and the get_stats reply — instead
// of vanishing.
func TestEventsDroppedCounted(t *testing.T) {
	clk, sess, _, ego := testSession(t)
	reg := telemetry.NewRegistry()
	ins := NewServerInstruments(reg)
	sess.Server.SetInstruments(ins)
	sess.Server.Start()
	// Blackhole the downlink so the reliable window fills, then swerve
	// hard: lane invasions pile up with nowhere to go.
	sess.Conn.Links.Down.AddRule(netem.Rule{Loss: 1})
	// Weave across the lane boundary so invasions keep firing while the
	// send window has nowhere to drain.
	weave := 0.3
	var swerve func(now time.Duration)
	swerve = func(now time.Duration) {
		ego.Plant.SetState(vehicle.State{Pose: geom.Pose{Pos: geom.V(100, 0), Yaw: weave}, Speed: 15})
		weave = -weave
		clk.Schedule(500*time.Millisecond, swerve)
	}
	clk.Schedule(0, swerve)
	clk.Advance(10 * time.Second)

	st := sess.Server.Stats()
	if st.EventsDropped == 0 {
		t.Fatalf("no events dropped under blackhole: %+v", st)
	}
	if got := ins.EventsDropped.Value(); got != st.EventsDropped {
		t.Fatalf("telemetry events_dropped = %d, stats = %d", got, st.EventsDropped)
	}

	// The counter also rides the get_stats meta-reply once the link heals.
	// Stop the loops first so the retransmit backlog can drain instead of
	// racing fresh camera frames for the send window.
	sess.Server.Stop()
	sess.Conn.Links.Down.DeleteRule()
	// Every queued fragment was lost and recovers one RTO at a time, so
	// the drain takes minutes of (cheap) simulated time.
	clk.Advance(3 * time.Minute)
	var last MetaReply
	sess.Client.OnMetaReply = func(r MetaReply) { last = r }
	if _, err := sess.Client.SendMeta("get_stats", nil); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if last.Data["events_dropped"] == "" || last.Data["events_dropped"] == "0" {
		t.Fatalf("get_stats events_dropped = %q, want > 0", last.Data["events_dropped"])
	}
}

// --- Delta streaming over the bridge ------------------------------------

// TestDeltaStreamingReliable drives a full session with diff streaming
// on: the station reconstructs every frame, deltas dominate the wire,
// and — the acceptance bound — a steady-state delta frame is smaller
// than the full frame it replaces.
func TestDeltaStreamingReliable(t *testing.T) {
	fullBytes := wireBytesOverAdvance(t, false)
	deltaBytes := wireBytesOverAdvance(t, true)
	if deltaBytes >= fullBytes {
		t.Fatalf("delta streaming moved %d payload bytes, full-frame %d — no win", deltaBytes, fullBytes)
	}
}

// wireBytesOverAdvance runs 10 simulated seconds with or without delta
// streaming and returns total frame payload bytes on the wire, checking
// the mode-specific invariants along the way.
func wireBytesOverAdvance(t *testing.T, delta bool) uint64 {
	t.Helper()
	clk, sess, _, ego := testSession(t)
	reg := telemetry.NewRegistry()
	ins := NewServerInstruments(reg)
	sess.Server.SetInstruments(ins)
	if delta {
		sess.Server.SetDeltaStreaming(true, 0)
	}
	sess.Server.Start()
	ego.Plant.Apply(cruise())
	clk.Advance(10 * time.Second)

	sst, cst := sess.Server.Stats(), sess.Client.Stats()
	if cst.FramesReceived < 200 {
		t.Fatalf("frames received = %d, want ≥200 over 10s", cst.FramesReceived)
	}
	if delta {
		if sst.DeltasSent == 0 || cst.DeltasApplied == 0 {
			t.Fatalf("delta mode moved no diffs: server %+v client %+v", sst, cst)
		}
		if sst.DeltasSent >= sst.FramesSent {
			t.Fatalf("every frame a delta — keyframe cadence broken: %+v", sst)
		}
		if cst.DeltaResyncs != 0 {
			t.Fatalf("resyncs on a reliable link: %d", cst.DeltaResyncs)
		}
		if got := ins.DeltasSent.Value(); got != sst.DeltasSent {
			t.Fatalf("telemetry deltas = %d, stats = %d", got, sst.DeltasSent)
		}
	} else {
		if sst.DeltasSent != 0 || cst.DeltasApplied != 0 {
			t.Fatalf("deltas moved with streaming off: server %+v client %+v", sst, cst)
		}
	}
	return ins.PayloadBytes.Value()
}

// TestDeltaStreamViewsMatchFullStream pins reconstruction equivalence at
// the bridge level: the same world driven through delta and full-frame
// sessions yields byte-identical displayed views at every frame number.
func TestDeltaStreamViewsMatchFullStream(t *testing.T) {
	capture := func(delta bool) map[uint64][]byte {
		clk, sess, _, ego := testSession(t)
		if delta {
			sess.Server.SetDeltaStreaming(true, 7) // short cadence: exercise many chain restarts
		}
		views := make(map[uint64][]byte)
		sess.Client.OnFrame = func(v sensors.WorldView, _ time.Duration) {
			views[v.Frame] = sensors.MarshalWorldView(v)
		}
		sess.Server.Start()
		ego.Plant.Apply(cruise())
		clk.Advance(5 * time.Second)
		return views
	}
	full := capture(false)
	diff := capture(true)
	if len(diff) == 0 || len(diff) != len(full) {
		t.Fatalf("frame counts differ: full %d, delta %d", len(full), len(diff))
	}
	for frame, want := range full {
		got, ok := diff[frame]
		if !ok {
			t.Fatalf("frame %d missing from delta stream", frame)
		}
		if string(got) != string(want) {
			t.Fatalf("frame %d reconstruction differs from full-frame stream", frame)
		}
	}
}

// TestDeltaResyncOverLossyDatagram breaks the diff chain with real
// packet loss: the station must detect the stale base, request a
// keyframe, and keep displaying fresh frames afterwards.
func TestDeltaResyncOverLossyDatagram(t *testing.T) {
	clk, sess2, _, ego := datagramSession(t)
	sess2.Server.Camera().VideoFrameBytes = 0 // single-fragment frames: loss drops whole frames
	sess2.Server.Camera().VideoDeltaBytes = 0
	sess2.Server.SetDeltaStreaming(true, 50) // long cadence: recovery must come from resync requests
	sess2.Server.Start()
	ego.Plant.Apply(cruise())
	clk.Advance(2 * time.Second)
	sess2.Conn.Links.Down.AddRule(netem.Rule{Loss: 0.3})
	clk.Advance(6 * time.Second)
	sess2.Conn.Links.Down.DeleteRule()
	atClear := sess2.Client.Stats().FramesReceived
	clk.Advance(2 * time.Second)

	cst := sess2.Client.Stats()
	if cst.DeltaResyncs == 0 {
		t.Fatalf("no resyncs under 30%% loss: %+v", cst)
	}
	if cst.FramesReceived <= atClear+10 {
		t.Fatalf("stream did not recover after loss cleared: %d -> %d", atClear, cst.FramesReceived)
	}
}
