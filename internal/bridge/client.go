package bridge

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"teledrive/internal/sensors"
	"teledrive/internal/simclock"
	"teledrive/internal/transport"
	"teledrive/internal/vehicle"
	"teledrive/internal/world"
)

// ClientStats counts operator-station activity.
type ClientStats struct {
	FramesReceived    uint64
	FramesStale       uint64 // frames older than the one already displayed
	DeltasApplied     uint64 // frames reconstructed from diffs (subset of FramesReceived)
	DeltaResyncs      uint64 // diffs whose base the station no longer held
	ControlsSent      uint64
	ControlsDropped   uint64 // send-window full
	CollisionsSeen    uint64
	LaneInvasionsSeen uint64
	MetaRepliesSeen   uint64
	ProtocolErrors    uint64 // malformed envelopes or kinds a client must never receive
}

// Client is the operator-station side of the bridge: it tracks the most
// recently displayed frame (what the human — or the driver model — can
// see), exposes the frame's age, and sends driving commands and
// meta-commands. It mirrors the CARLA client role in the paper's Fig 3.
type Client struct {
	// OnFrame, when non-nil, runs whenever a newer frame is displayed.
	OnFrame func(view sensors.WorldView, latency time.Duration)
	// OnCollision / OnLaneInvasion receive sensor events forwarded by
	// the server.
	OnCollision    func(CollisionWire)
	OnLaneInvasion func(LaneInvasionWire)
	// OnMetaReply receives replies to meta-commands.
	OnMetaReply func(MetaReply)

	clock *simclock.Clock
	ep    *transport.Endpoint

	latest      sensors.WorldView
	latestValid bool
	latestLat   time.Duration // transport latency of the displayed frame
	receivedAt  time.Duration // when the displayed frame arrived
	metaSeq     uint64
	stats       ClientStats
	ins         *ClientInstruments // optional telemetry handles; nil = uninstrumented

	// resyncStreak spaces out keyframe requests while the diff chain is
	// broken; it resets whenever a frame is accepted.
	resyncStreak int

	// decodeView double-buffers the frame decode: each MsgFrame is
	// decoded into it, and on acceptance it is swapped with latest, so
	// the displaced view's actor backing becomes the next decode target.
	// A view handed out (Frame, OnFrame) is therefore stable only until
	// the next accepted frame — consumers that look further back copy
	// what they keep (the driver's reaction buffer does).
	decodeView sensors.WorldView
	// ctrlBuf is the reused control envelope; the transport copies the
	// payload into pooled fragments, so reuse across sends is safe.
	ctrlBuf []byte
}

// NewClient builds the operator station side. ep is the client transport
// endpoint; wire its handler via Handler().
func NewClient(clock *simclock.Clock, ep *transport.Endpoint) (*Client, error) {
	if clock == nil || ep == nil {
		return nil, fmt.Errorf("bridge: NewClient: nil dependency")
	}
	return &Client{clock: clock, ep: ep}, nil
}

// Handler returns the transport handler processing server→client
// messages; pass it when constructing the transport endpoint.
func (c *Client) Handler() transport.Handler {
	return func(payload []byte, _ uint64, latency time.Duration) {
		c.handleMessage(payload, latency)
	}
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() ClientStats { return c.stats }

// Frame returns the currently displayed world view. ok is false until
// the first frame arrives.
func (c *Client) Frame() (view sensors.WorldView, ok bool) {
	return c.latest, c.latestValid
}

// FrameAge returns how stale the displayed frame's content is: the time
// elapsed since the frame was captured on the vehicle, as observable at
// the station (transport latency + time since arrival). This is the
// quantity network faults inflate and the driver model perceives.
func (c *Client) FrameAge() time.Duration {
	if !c.latestValid {
		return time.Duration(-1)
	}
	return c.latestLat + (c.clock.Now() - c.receivedAt)
}

// FrameLatency returns the transport latency of the displayed frame.
func (c *Client) FrameLatency() time.Duration { return c.latestLat }

// SendControl transmits a driving command to the vehicle. A full send
// window drops the command (counted), like a congested socket.
func (c *Client) SendControl(ctrl vehicle.Control) error {
	c.ctrlBuf = appendControlMsg(c.ctrlBuf[:0], ctrl)
	if err := c.ep.Send(c.ctrlBuf); err != nil {
		c.stats.ControlsDropped++
		if c.ins != nil {
			c.ins.ControlsDropped.Inc()
		}
		return fmt.Errorf("bridge: send control: %w", err)
	}
	c.stats.ControlsSent++
	if c.ins != nil {
		c.ins.ControlsSent.Inc()
	}
	return nil
}

// SendMeta transmits a meta-command and returns its sequence number for
// correlation with the reply.
func (c *Client) SendMeta(cmd string, args map[string]string) (uint64, error) {
	c.metaSeq++
	m := MetaCommand{Seq: c.metaSeq, Cmd: cmd, Args: args}
	buf, err := marshalJSONMsg(MsgMeta, m)
	if err != nil {
		return 0, err
	}
	if err := c.ep.Send(buf); err != nil {
		return 0, fmt.Errorf("bridge: send meta: %w", err)
	}
	return c.metaSeq, nil
}

func (c *Client) handleMessage(payload []byte, latency time.Duration) {
	t, body, err := splitEnvelope(payload)
	if err != nil {
		c.stats.ProtocolErrors++
		return
	}
	switch t {
	case MsgFrame:
		if err := sensors.UnmarshalWorldViewInto(&c.decodeView, body); err != nil {
			c.stats.ProtocolErrors++
			return
		}
		c.stats.FramesReceived++
		if c.ins != nil {
			c.ins.FramesReceived.Inc()
		}
		c.acceptDecoded(latency)
	case MsgDeltaFrame:
		// A diff applies against the displayed view; a chain break —
		// nothing displayed yet, or the base frame was lost on the way —
		// asks the server to restart with a keyframe.
		if !c.latestValid {
			c.stats.DeltaResyncs++
			c.requestKeyframe()
			return
		}
		if err := sensors.ApplyWorldViewDelta(&c.decodeView, c.latest, body); err != nil {
			if errors.Is(err, sensors.ErrDeltaBaseMismatch) {
				c.stats.DeltaResyncs++
				c.requestKeyframe()
			} else {
				c.stats.ProtocolErrors++
			}
			return
		}
		c.stats.FramesReceived++
		c.stats.DeltasApplied++
		if c.ins != nil {
			c.ins.FramesReceived.Inc()
		}
		c.acceptDecoded(latency)
	case MsgCollision:
		var ev CollisionWire
		if json.Unmarshal(body, &ev) == nil {
			c.stats.CollisionsSeen++
			if c.OnCollision != nil {
				c.OnCollision(ev)
			}
		}
	case MsgLaneInvasion:
		var ev LaneInvasionWire
		if json.Unmarshal(body, &ev) == nil {
			c.stats.LaneInvasionsSeen++
			if c.OnLaneInvasion != nil {
				c.OnLaneInvasion(ev)
			}
		}
	case MsgMetaReply:
		var r MetaReply
		if json.Unmarshal(body, &r) == nil {
			c.stats.MetaRepliesSeen++
			if c.OnMetaReply != nil {
				c.OnMetaReply(r)
			}
		}
	default:
		// MsgControl and MsgMeta flow client→server only; receiving one
		// here — or a kind this build does not know — is peer confusion
		// to count, not traffic to ignore.
		c.stats.ProtocolErrors++
	}
}

// acceptDecoded promotes decodeView to the display if it is newer than
// what is shown. Only monotonically newer frames display; an older
// frame that arrives late (reordering, duplication) is discarded — its
// decode target is simply reused by the next frame.
func (c *Client) acceptDecoded(latency time.Duration) {
	if c.latestValid && c.decodeView.Frame <= c.latest.Frame {
		c.stats.FramesStale++
		if c.ins != nil {
			c.ins.FramesStale.Inc()
		}
		return
	}
	c.latest, c.decodeView = c.decodeView, c.latest
	c.latestValid = true
	c.latestLat = latency
	c.receivedAt = c.clock.Now()
	c.resyncStreak = 0
	if c.OnFrame != nil {
		c.OnFrame(c.latest, latency)
	}
}

// requestKeyframe asks the server to restart the diff chain. Spaced
// out: under sustained loss every broken diff would otherwise emit a
// meta-command, and the requests ride the same lossy uplink — so the
// first break asks immediately and persistence retries every eighth.
func (c *Client) requestKeyframe() {
	c.resyncStreak++
	if c.resyncStreak == 1 || c.resyncStreak%8 == 0 {
		// Best-effort: a lost request is retried by the streak above,
		// and the server's keyframe cadence recovers the chain anyway.
		_, _ = c.SendMeta("request_keyframe", nil)
	}
}

// Session bundles a connected server/client pair over an emulated
// network — one complete RDS communication stack.
type Session struct {
	Server *Server
	Client *Client
	Conn   *transport.Conn
}

// NewSession wires a vehicle-subsystem server and an operator-station
// client over a fresh reliable connection with the given seed — the
// paper's TCP-like setup. Fault rules are injected through Conn.Links.
func NewSession(clock *simclock.Clock, w *world.World, ego *world.Actor, seed int64) (*Session, error) {
	return NewSessionWithTransport(clock, w, ego, seed, transport.Options{Name: "bridge", Reliable: true})
}

// NewSessionWithTransport is NewSession with explicit transport options,
// e.g. datagram mode for the transport ablation (DESIGN.md §5.1).
func NewSessionWithTransport(clock *simclock.Clock, w *world.World, ego *world.Actor, seed int64, topts transport.Options) (*Session, error) {
	// The handlers need the server/client objects, which need the
	// endpoints; break the cycle with late-bound closures.
	var srv *Server
	var cli *Client
	conn := transport.Connect(clock, seed, topts,
		func(payload []byte, seq uint64, lat time.Duration) {
			if srv != nil {
				srv.Handler()(payload, seq, lat)
			}
		},
		func(payload []byte, seq uint64, lat time.Duration) {
			if cli != nil {
				cli.Handler()(payload, seq, lat)
			}
		},
	)
	srv, err := NewServer(clock, w, ego, conn.A)
	if err != nil {
		return nil, err
	}
	cli, err = NewClient(clock, conn.B)
	if err != nil {
		return nil, err
	}
	return &Session{Server: srv, Client: cli, Conn: conn}, nil
}
