// Package bridge implements the custom RPC bridge between the vehicle
// subsystem and the operator station — the stand-in for the CARLA
// client/server protocol (server renders and simulates; client controls
// the actor and sends meta-commands, §II-A/III-B of the paper).
//
// All messages travel over one reliable transport.Conn, like CARLA's TCP
// connection. Message classes mirror CARLA's: sensor streams (camera
// frames, collision and lane-invasion events) flow server→client;
// driving commands (VehicleControl) and meta-commands (weather, frame
// rate, ping) flow client→server.
package bridge

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"teledrive/internal/vehicle"
	"teledrive/internal/world"
)

// MsgType discriminates bridge messages (first payload byte).
type MsgType uint8

// Bridge message types.
const (
	MsgFrame MsgType = iota + 1 // server→client: camera world view
	MsgCollision
	MsgLaneInvasion
	MsgControl // client→server: vehicle control
	MsgMeta    // client→server: meta-command
	MsgMetaReply
	MsgDeltaFrame // server→client: world view as a diff against a prior frame
)

// String returns a short message-type name.
func (t MsgType) String() string {
	switch t {
	case MsgFrame:
		return "frame"
	case MsgCollision:
		return "collision"
	case MsgLaneInvasion:
		return "lane-invasion"
	case MsgControl:
		return "control"
	case MsgMeta:
		return "meta"
	case MsgMetaReply:
		return "meta-reply"
	case MsgDeltaFrame:
		return "delta-frame"
	default:
		return fmt.Sprintf("msg(%d)", uint8(t))
	}
}

// ErrBadMessage reports an undecodable bridge message.
var ErrBadMessage = errors.New("bridge: malformed message")

// envelope prepends the type byte.
func envelope(t MsgType, body []byte) []byte {
	out := make([]byte, 1+len(body))
	out[0] = byte(t)
	copy(out[1:], body)
	return out
}

// splitEnvelope returns the message type and body.
func splitEnvelope(payload []byte) (MsgType, []byte, error) {
	if len(payload) == 0 {
		return 0, nil, fmt.Errorf("%w: empty payload", ErrBadMessage)
	}
	return MsgType(payload[0]), payload[1:], nil
}

// --- VehicleControl wire codec -----------------------------------------

const controlWireLen = 3*8 + 1

// controlFlags bit assignments.
const (
	flagReverse   = 1 << 0
	flagHandBrake = 1 << 1
)

// MarshalControl serializes a vehicle control command.
func MarshalControl(c vehicle.Control) []byte {
	buf := make([]byte, controlWireLen)
	binary.BigEndian.PutUint64(buf[0:], math.Float64bits(c.Throttle))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(c.Steer))
	binary.BigEndian.PutUint64(buf[16:], math.Float64bits(c.Brake))
	var flags byte
	if c.Reverse {
		flags |= flagReverse
	}
	if c.HandBrake {
		flags |= flagHandBrake
	}
	buf[24] = flags
	return buf
}

// appendControlMsg appends the enveloped MsgControl wire form to dst —
// the allocation-free path for the 50 Hz control send (the stack array
// does not escape).
func appendControlMsg(dst []byte, c vehicle.Control) []byte {
	var buf [1 + controlWireLen]byte
	buf[0] = byte(MsgControl)
	binary.BigEndian.PutUint64(buf[1:], math.Float64bits(c.Throttle))
	binary.BigEndian.PutUint64(buf[9:], math.Float64bits(c.Steer))
	binary.BigEndian.PutUint64(buf[17:], math.Float64bits(c.Brake))
	var flags byte
	if c.Reverse {
		flags |= flagReverse
	}
	if c.HandBrake {
		flags |= flagHandBrake
	}
	buf[1+24] = flags
	return append(dst, buf[:]...)
}

// UnmarshalControl decodes a control command.
func UnmarshalControl(buf []byte) (vehicle.Control, error) {
	if len(buf) != controlWireLen {
		return vehicle.Control{}, fmt.Errorf("%w: control length %d", ErrBadMessage, len(buf))
	}
	c := vehicle.Control{
		Throttle:  math.Float64frombits(binary.BigEndian.Uint64(buf[0:])),
		Steer:     math.Float64frombits(binary.BigEndian.Uint64(buf[8:])),
		Brake:     math.Float64frombits(binary.BigEndian.Uint64(buf[16:])),
		Reverse:   buf[24]&flagReverse != 0,
		HandBrake: buf[24]&flagHandBrake != 0,
	}
	for _, f := range [...]float64{c.Throttle, c.Steer, c.Brake} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return vehicle.Control{}, fmt.Errorf("%w: non-finite control value", ErrBadMessage)
		}
	}
	return c, nil
}

// --- Meta-commands ------------------------------------------------------

// MetaCommand is a CARLA-style meta-command affecting server behaviour
// (weather, sensor properties, road users — §III-B).
type MetaCommand struct {
	// Seq correlates replies with requests.
	Seq uint64 `json:"seq"`
	// Cmd names the command: "set_weather", "set_frame_interval",
	// "ping", "get_stats".
	Cmd string `json:"cmd"`
	// Args carries command parameters.
	Args map[string]string `json:"args,omitempty"`
}

// MetaReply answers a MetaCommand.
type MetaReply struct {
	Seq   uint64            `json:"seq"`
	OK    bool              `json:"ok"`
	Error string            `json:"error,omitempty"`
	Data  map[string]string `json:"data,omitempty"`
}

// --- Sensor events ------------------------------------------------------

// EventKind labels sensor events on the wire.
type EventKind string

// Event kinds.
const (
	EventCollision    EventKind = "collision"
	EventLaneInvasion EventKind = "lane_invasion"
)

// CollisionWire is the wire form of a collision event.
type CollisionWire struct {
	TimeNS int64         `json:"time_ns"`
	Frame  uint64        `json:"frame"`
	Actor  world.ActorID `json:"actor"`
	Other  world.ActorID `json:"other"`
	SpeedA float64       `json:"speed_a"`
	SpeedB float64       `json:"speed_b"`
}

// LaneInvasionWire is the wire form of a lane-invasion event.
type LaneInvasionWire struct {
	TimeNS  int64         `json:"time_ns"`
	Frame   uint64        `json:"frame"`
	Actor   world.ActorID `json:"actor"`
	Kind    string        `json:"kind"`
	LaneID  string        `json:"lane_id"`
	Lateral float64       `json:"lateral"`
}

func marshalJSONMsg(t MsgType, v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("bridge: marshal %v: %w", t, err)
	}
	return envelope(t, body), nil
}

func collisionToWire(ev world.CollisionEvent) CollisionWire {
	return CollisionWire{
		TimeNS: int64(ev.Time), Frame: ev.Frame,
		Actor: ev.Actor, Other: ev.Other,
		SpeedA: ev.SpeedA, SpeedB: ev.SpeedB,
	}
}

func laneInvasionToWire(ev world.LaneInvasionEvent) LaneInvasionWire {
	return LaneInvasionWire{
		TimeNS: int64(ev.Time), Frame: ev.Frame, Actor: ev.Actor,
		Kind: ev.Kind.String(), LaneID: ev.LaneID, Lateral: ev.Lateral,
	}
}

// FromWireTime converts a wire timestamp back to a duration.
func FromWireTime(ns int64) time.Duration { return time.Duration(ns) }
