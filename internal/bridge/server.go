package bridge

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"teledrive/internal/sensors"
	"teledrive/internal/simclock"
	"teledrive/internal/transport"
	"teledrive/internal/vehicle"
	"teledrive/internal/world"
)

// PhysicsTick is the fixed physics step of the vehicle subsystem (50 Hz,
// matching CARLA's synchronous-mode default).
const PhysicsTick = 20 * time.Millisecond

// ServerStats counts server-side activity.
type ServerStats struct {
	FramesSent      uint64
	FramesDropped   uint64 // send-window full → frame skipped at the sender
	DeltasSent      uint64 // frames shipped as diffs (subset of FramesSent)
	ControlsApplied uint64
	EventsSent      uint64
	EventsDropped   uint64 // sensor events lost to a full window or a marshal failure
	MetasHandled    uint64
	ProtocolErrors  uint64 // malformed envelopes/bodies or kinds a server must never receive
}

// Server is the vehicle subsystem: it owns the world, steps physics at
// PhysicsTick, captures camera frames, streams sensor data to the
// client, and applies incoming controls to the ego plant. It mirrors the
// CARLA server role in the paper's Fig 3.
type Server struct {
	// OnTick, when non-nil, runs after every physics step with the
	// current simulated time. The scenario engine uses it to script
	// traffic and trigger fault injection.
	OnTick func(now time.Duration)

	clock  *simclock.Clock
	w      *world.World
	ego    *world.Actor
	cam    *sensors.Camera
	ep     *transport.Endpoint
	colSen *sensors.CollisionSensor
	lanSen *sensors.LaneInvasionSensor

	frameInterval time.Duration
	weather       string
	running       bool
	stopped       bool
	stats         ServerStats
	ins           *ServerInstruments // optional telemetry handles; nil = uninstrumented
	lastControl   vehicle.Control

	// view and sendBuf are reused across camera ticks so the per-frame
	// capture→marshal→send path does not allocate. Reuse is safe because
	// transport.Endpoint.Send copies the payload into its fragments.
	view    sensors.WorldView
	sendBuf []byte

	// Delta-streaming state (DESIGN.md §14). baseView is a copy of the
	// last successfully sent view — the diff base both peers hold. It
	// only advances on successful sends, so a window-full drop never
	// breaks the chain; on a lossy datagram link the client detects the
	// break (ErrDeltaBaseMismatch) and requests a keyframe.
	deltaStream   bool
	keyframeEvery int
	sinceKey      int
	forceKey      bool
	baseValid     bool
	baseView      sensors.WorldView

	// Owned tick timers (simclock.NewTimer): one struct per loop for the
	// server's whole life instead of a fresh Timer per tick.
	physTimer *simclock.Timer
	camTimer  *simclock.Timer
}

// NewServer builds the vehicle subsystem around an existing world and
// ego actor. ep is the server side of the bridge connection; wire its
// handler with Endpoint semantics via Handler().
func NewServer(clock *simclock.Clock, w *world.World, ego *world.Actor, ep *transport.Endpoint) (*Server, error) {
	if clock == nil || w == nil || ego == nil || ep == nil {
		return nil, fmt.Errorf("bridge: NewServer: nil dependency")
	}
	if ego.Plant == nil {
		return nil, fmt.Errorf("bridge: server ego %d has no dynamic plant", ego.ID)
	}
	s := &Server{
		clock:         clock,
		w:             w,
		ego:           ego,
		cam:           sensors.NewCamera(w, ego),
		ep:            ep,
		colSen:        sensors.NewCollisionSensor(w, ego.ID),
		lanSen:        sensors.NewLaneInvasionSensor(w, ego.ID),
		frameInterval: sensors.DefaultFrameInterval,
		weather:       "clear-day",
	}
	s.physTimer = clock.NewTimer(s.physicsTick)
	s.camTimer = clock.NewTimer(s.cameraTick)
	return s, nil
}

// Handler returns the transport handler processing client→server
// messages; pass it when constructing the transport endpoint.
func (s *Server) Handler() transport.Handler {
	return func(payload []byte, _ uint64, _ time.Duration) {
		s.handleMessage(payload)
	}
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats { return s.stats }

// World returns the simulated world (ground truth for logging).
func (s *Server) World() *world.World { return s.w }

// Ego returns the remotely driven actor.
func (s *Server) Ego() *world.Actor { return s.ego }

// Camera returns the server's camera (range adjustments, testing).
func (s *Server) Camera() *sensors.Camera { return s.cam }

// LastControl returns the most recently applied control command.
func (s *Server) LastControl() vehicle.Control { return s.lastControl }

// Weather returns the current weather meta-state.
func (s *Server) Weather() string { return s.weather }

// FrameInterval returns the camera frame period.
func (s *Server) FrameInterval() time.Duration { return s.frameInterval }

// SetOnTick registers the callback run after every physics step (the
// session layer's observer/supervision hook). It shadows any direct
// OnTick assignment.
func (s *Server) SetOnTick(fn func(now time.Duration)) { s.OnTick = fn }

// SetFrameInterval changes the camera frame period (effective from the
// next scheduled frame). Non-positive values are ignored.
func (s *Server) SetFrameInterval(d time.Duration) { s.trySetFrameInterval(d) }

// trySetFrameInterval is the single validation path for frame-interval
// changes: SetFrameInterval and the set_frame_interval meta-command
// both go through it, so the guard cannot be bypassed.
func (s *Server) trySetFrameInterval(d time.Duration) bool {
	if d <= 0 {
		return false
	}
	s.frameInterval = d
	return true
}

// DefaultKeyframeEvery is the delta-streaming keyframe cadence in
// frames: one keyframe per second at the default frame interval, so a
// station that missed a resync round-trip still recovers on its own.
const DefaultKeyframeEvery = 28

// SetDeltaStreaming switches the downlink between full-frame and
// keyframe+diff world-view streaming. keyframeEvery bounds the diff
// chain length (non-positive = DefaultKeyframeEvery). Enabling always
// restarts the chain with a keyframe. Delta streaming changes wire
// sizes — and therefore trajectories on an impaired link — so the
// canonical fingerprint cells run with it off.
func (s *Server) SetDeltaStreaming(on bool, keyframeEvery int) {
	s.deltaStream = on
	if keyframeEvery <= 0 {
		keyframeEvery = DefaultKeyframeEvery
	}
	s.keyframeEvery = keyframeEvery
	s.baseValid = false
	s.sinceKey = 0
	s.forceKey = false
}

// DeltaStreaming reports whether the downlink ships diffs.
func (s *Server) DeltaStreaming() bool { return s.deltaStream }

// Start schedules the physics and camera loops on the simulated clock.
// It is idempotent.
func (s *Server) Start() {
	if s.running {
		return
	}
	s.running = true
	s.stopped = false
	// Each Reschedule consumes one clock sequence number, exactly like
	// the per-tick Schedule calls it replaced, so event ordering (and
	// every trace fingerprint) is unchanged.
	s.clock.Cancel(s.physTimer)
	s.clock.Reschedule(s.physTimer, PhysicsTick)
	s.clock.Cancel(s.camTimer)
	s.clock.Reschedule(s.camTimer, s.frameInterval)
}

// Stop halts the loops after the current event.
func (s *Server) Stop() {
	s.stopped = true
	s.running = false
}

func (s *Server) physicsTick(now time.Duration) {
	if s.stopped {
		return
	}
	s.w.Step(PhysicsTick.Seconds())
	s.flushEvents()
	if s.OnTick != nil {
		s.OnTick(now)
	}
	s.clock.Reschedule(s.physTimer, PhysicsTick)
}

func (s *Server) cameraTick(now time.Duration) {
	if s.stopped {
		return
	}
	s.cam.CaptureInto(&s.view)
	keyframe := true
	if s.deltaStream && s.baseValid && !s.forceKey && s.sinceKey < s.keyframeEvery {
		s.sendBuf = append(s.sendBuf[:0], byte(MsgDeltaFrame))
		s.sendBuf = sensors.MarshalWorldViewDeltaAppend(s.sendBuf, s.baseView, s.view, s.cam.VideoDeltaBytes)
		// A diff that does not beat the keyframe (mass actor turnover)
		// is pure downside — fall back to the self-contained form.
		if len(s.sendBuf) < 1+sensors.WorldViewWireSize(s.view) {
			keyframe = false
		}
	}
	if keyframe {
		s.sendBuf = append(s.sendBuf[:0], byte(MsgFrame))
		s.sendBuf = sensors.MarshalWorldViewAppend(s.sendBuf, s.view)
	}
	if err := s.ep.Send(s.sendBuf); err != nil {
		// Send window full: the sender-side socket buffer is congested;
		// drop this frame like a saturated video encoder queue would.
		// baseView stays at the last accepted send, keeping the diff
		// chain intact on a reliable link.
		s.stats.FramesDropped++
		if s.ins != nil {
			s.ins.FramesDropped.Inc()
		}
	} else {
		s.stats.FramesSent++
		if s.ins != nil {
			s.ins.FramesSent.Inc()
			s.ins.PayloadBytes.Add(uint64(len(s.sendBuf)))
		}
		if s.deltaStream {
			s.rememberBase(keyframe)
		}
	}
	s.clock.Reschedule(s.camTimer, s.frameInterval)
}

// rememberBase records the just-sent view as the next diff base.
func (s *Server) rememberBase(keyframe bool) {
	s.baseView.Frame = s.view.Frame
	s.baseView.SimTime = s.view.SimTime
	s.baseView.VideoFill = s.view.VideoFill
	s.baseView.Ego = s.view.Ego
	s.baseView.Others = append(s.baseView.Others[:0], s.view.Others...)
	s.baseValid = true
	if keyframe {
		s.sinceKey = 0
		s.forceKey = false
		return
	}
	s.sinceKey++
	s.stats.DeltasSent++
	if s.ins != nil {
		s.ins.DeltasSent.Inc()
	}
}

// flushEvents streams buffered sensor events to the client.
func (s *Server) flushEvents() {
	for _, ev := range s.colSen.Drain() {
		s.sendEvent(MsgCollision, collisionToWire(ev))
	}
	for _, ev := range s.lanSen.Drain() {
		s.sendEvent(MsgLaneInvasion, laneInvasionToWire(ev))
	}
}

// sendEvent streams one sensor event. A marshal failure or a full send
// window loses the event — a collision the operator never learns about
// — so every loss is counted instead of vanishing silently.
func (s *Server) sendEvent(t MsgType, v any) {
	buf, err := marshalJSONMsg(t, v)
	if err == nil {
		err = s.ep.Send(buf)
	}
	if err != nil {
		s.stats.EventsDropped++
		if s.ins != nil {
			s.ins.EventsDropped.Inc()
		}
		return
	}
	s.stats.EventsSent++
	if s.ins != nil {
		s.ins.EventsSent.Inc()
	}
}

func (s *Server) handleMessage(payload []byte) {
	t, body, err := splitEnvelope(payload)
	if err != nil {
		s.stats.ProtocolErrors++
		return
	}
	switch t {
	case MsgControl:
		c, err := UnmarshalControl(body)
		if err != nil {
			s.stats.ProtocolErrors++
			return
		}
		s.lastControl = c
		s.ego.Plant.Apply(c)
		s.stats.ControlsApplied++
		if s.ins != nil {
			s.ins.ControlsApplied.Inc()
		}
	case MsgMeta:
		var cmd MetaCommand
		if err := json.Unmarshal(body, &cmd); err != nil {
			s.stats.ProtocolErrors++
			return
		}
		s.handleMeta(cmd)
	default:
		// MsgFrame, MsgDeltaFrame, MsgCollision, MsgLaneInvasion, and
		// MsgMetaReply flow server→client only; receiving one here — or
		// a kind this build does not know — is peer confusion to count,
		// not traffic to ignore.
		s.stats.ProtocolErrors++
	}
}

func (s *Server) handleMeta(cmd MetaCommand) {
	s.stats.MetasHandled++
	reply := MetaReply{Seq: cmd.Seq, OK: true}
	switch cmd.Cmd {
	case "ping":
		reply.Data = map[string]string{"time_ns": strconv.FormatInt(int64(s.clock.Now()), 10)}
	case "set_weather":
		w := cmd.Args["weather"]
		if w == "" {
			reply.OK = false
			reply.Error = "set_weather: missing weather arg"
			break
		}
		s.weather = w
		// Night reduces the usable camera range (headlight reach),
		// which is how the paper's day/night OD conditions enter the
		// model.
		if strings.Contains(w, "night") {
			s.cam.Range = 90
		} else {
			s.cam.Range = 150
		}
	case "set_frame_interval":
		// One validation path: the same guard SetFrameInterval uses, so
		// the meta-command can never smuggle in an interval the API
		// rejects.
		d, err := time.ParseDuration(cmd.Args["interval"])
		if err != nil || !s.trySetFrameInterval(d) {
			reply.OK = false
			reply.Error = fmt.Sprintf("set_frame_interval: bad interval %q", cmd.Args["interval"])
		}
	case "request_keyframe":
		// Station lost the diff chain (or just joined): restart it with
		// a self-contained frame on the next camera tick.
		s.forceKey = true
	case "get_stats":
		reply.Data = map[string]string{
			"frames_sent":    strconv.FormatUint(s.stats.FramesSent, 10),
			"frames_dropped": strconv.FormatUint(s.stats.FramesDropped, 10),
			"deltas_sent":    strconv.FormatUint(s.stats.DeltasSent, 10),
			"events_sent":    strconv.FormatUint(s.stats.EventsSent, 10),
			"events_dropped": strconv.FormatUint(s.stats.EventsDropped, 10),
			"weather":        s.weather,
		}
	default:
		reply.OK = false
		reply.Error = fmt.Sprintf("unknown meta command %q", cmd.Cmd)
	}
	if buf, err := marshalJSONMsg(MsgMetaReply, reply); err == nil {
		// Best-effort: a full window drops the reply like any datagram.
		_ = s.ep.Send(buf)
	}
}
