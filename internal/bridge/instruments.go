package bridge

import (
	"teledrive/internal/telemetry"
)

// ServerInstruments is the vehicle subsystem's native telemetry: the
// frame/control counters the camera and control paths increment
// alongside ServerStats. Handles are pre-bound; the per-frame path adds
// only nil-checked atomic operations.
type ServerInstruments struct {
	FramesSent      *telemetry.Counter
	FramesDropped   *telemetry.Counter
	DeltasSent      *telemetry.Counter
	PayloadBytes    *telemetry.Counter
	ControlsApplied *telemetry.Counter
	EventsSent      *telemetry.Counter
	EventsDropped   *telemetry.Counter
}

// NewServerInstruments binds the server instrument set in reg.
func NewServerInstruments(reg *telemetry.Registry) *ServerInstruments {
	frames := reg.CounterVec("teledrive_bridge_frames_total",
		"Camera frames at the vehicle-side sender, by outcome (sent/dropped).", "outcome")
	return &ServerInstruments{
		FramesSent:    frames.With("sent"),
		FramesDropped: frames.With("dropped"),
		DeltasSent: reg.Counter("teledrive_bridge_frames_delta_total",
			"Frames shipped as keyframe-relative diffs (subset of sent)."),
		PayloadBytes: reg.Counter("teledrive_bridge_frame_payload_bytes_total",
			"Serialized frame payload bytes handed to the transport."),
		ControlsApplied: reg.Counter("teledrive_bridge_controls_applied_total",
			"Driving commands applied to the ego plant."),
		EventsSent: reg.Counter("teledrive_bridge_events_sent_total",
			"Collision/lane-invasion sensor events streamed to the station."),
		EventsDropped: reg.Counter("teledrive_bridge_events_dropped_total",
			"Sensor events lost to a full send window or a marshal failure."),
	}
}

// NewServerInstrumentsSession binds a hub-hosted server's instrument
// set under per-session labels. The metric names are distinct from the
// unlabeled teledrive_bridge_* family — the registry pins one label
// schema per name, and the in-process run path binds the unlabeled
// family in the same registry. Label cardinality is the caller's
// problem: hubs label by session *name* (scenario or operator handle),
// not by unbounded numeric id.
func NewServerInstrumentsSession(reg *telemetry.Registry, session string) *ServerInstruments {
	frames := reg.CounterVec("teledrive_hub_frames_total",
		"Hub session camera frames at the sender, by session and outcome.", "session", "outcome")
	events := reg.CounterVec("teledrive_hub_events_total",
		"Hub session sensor events, by session and outcome.", "session", "outcome")
	return &ServerInstruments{
		FramesSent:    frames.With(session, "sent"),
		FramesDropped: frames.With(session, "dropped"),
		DeltasSent: reg.CounterVec("teledrive_hub_frames_delta_total",
			"Hub session frames shipped as diffs.", "session").With(session),
		PayloadBytes: reg.CounterVec("teledrive_hub_frame_payload_bytes_total",
			"Hub session frame payload bytes handed to the transport.", "session").With(session),
		ControlsApplied: reg.CounterVec("teledrive_hub_controls_applied_total",
			"Hub session driving commands applied to the ego plant.", "session").With(session),
		EventsSent:    events.With(session, "sent"),
		EventsDropped: events.With(session, "dropped"),
	}
}

// SetInstruments attaches (or detaches, with nil) the server's
// telemetry handles. Call at wiring time.
func (s *Server) SetInstruments(ins *ServerInstruments) { s.ins = ins }

// ClientInstruments is the operator station's native telemetry.
type ClientInstruments struct {
	FramesReceived  *telemetry.Counter
	FramesStale     *telemetry.Counter
	ControlsSent    *telemetry.Counter
	ControlsDropped *telemetry.Counter
}

// NewClientInstruments binds the client instrument set in reg.
func NewClientInstruments(reg *telemetry.Registry) *ClientInstruments {
	controls := reg.CounterVec("teledrive_bridge_controls_total",
		"Driving commands at the station-side sender, by outcome (sent/dropped).", "outcome")
	return &ClientInstruments{
		FramesReceived: reg.Counter("teledrive_bridge_frames_received_total",
			"Frames received at the operator station."),
		FramesStale: reg.Counter("teledrive_bridge_frames_stale_total",
			"Frames discarded at the station for arriving older than the displayed one."),
		ControlsSent:    controls.With("sent"),
		ControlsDropped: controls.With("dropped"),
	}
}

// SetInstruments attaches (or detaches, with nil) the client's
// telemetry handles. Call at wiring time.
func (c *Client) SetInstruments(ins *ClientInstruments) { c.ins = ins }
