package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockSimclockAnalyzer guards the virtual-time axis: no blocking
// operation (channel send/receive, a select with no default, taking a
// second lock) may sit inside a critical section of a mutex that a
// simclock tick path also takes. The simulation advances time from a
// single tick loop; if the tick goroutine parks on a mutex whose
// current holder is itself parked on a channel, virtual time freezes
// and every deadline in the campaign silently stretches — the
// wall/virtual divergence the paper's method (§IV) exists to prevent.
//
// Tick paths are found structurally: functions named *tick*/Step/
// Advance/OnTick and closures handed to Schedule/ScheduleAt. Mutexes
// they lock become "tick mutexes"; any critical section of a tick
// mutex anywhere in the package is then scanned for blocking calls.
// A section that provably cannot block (e.g. a buffered channel with
// guaranteed capacity) is annotated //lint:allow locksimclock with the
// capacity argument.
var LockSimclockAnalyzer = &Analyzer{
	Name: "locksimclock",
	Doc:  "forbid blocking operations while holding a mutex shared with a simclock tick path",
	Run:  runLockSimclock,
}

func runLockSimclock(pass *Pass) {
	if pass.Info == nil {
		return
	}
	tickMutexes := pass.collectTickMutexes()
	if len(tickMutexes) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pass.scanForHeldBlocking(fd.Body, tickMutexes)
		}
	}
}

// collectTickMutexes finds every mutex object locked somewhere on a
// tick path, mapped to the position of that tick-path lock for the
// diagnostic.
func (p *Pass) collectTickMutexes() map[types.Object]token.Pos {
	mutexes := make(map[types.Object]token.Pos)
	record := func(body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj, method, ok := p.mutexMethodCall(call); ok && (method == "Lock" || method == "RLock") {
				if _, seen := mutexes[obj]; !seen {
					mutexes[obj] = call.Pos()
				}
			}
			return true
		})
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && isTickName(fd.Name.Name) {
				record(fd.Body)
			}
		}
		// Closures scheduled on the simclock are tick path too.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Schedule" && sel.Sel.Name != "ScheduleAt") {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					record(lit.Body)
				}
			}
			return true
		})
	}
	return mutexes
}

// isTickName matches the repo's tick-path naming: tick loops, stepper
// entry points, and scheduler callbacks.
func isTickName(name string) bool {
	switch name {
	case "Step", "Advance", "OnTick":
		return true
	}
	return strings.Contains(strings.ToLower(name), "tick")
}

// mutexMethodCall matches x.Lock/RLock/Unlock/RUnlock where the method
// is declared in package sync, returning the object holding the mutex.
func (p *Pass) mutexMethodCall(call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	obj := p.accessedObject(sel.X)
	if obj == nil {
		return nil, "", false
	}
	return obj, name, true
}

// scanForHeldBlocking walks every statement list in body, tracking
// critical sections of tick mutexes and reporting blocking operations
// inside them.
func (p *Pass) scanForHeldBlocking(body *ast.BlockStmt, tickMutexes map[types.Object]token.Pos) {
	var scanList func(list []ast.Stmt, held map[types.Object]token.Pos)
	scanList = func(list []ast.Stmt, held map[types.Object]token.Pos) {
		// held is the set of tick mutexes locked on entry to this list
		// (from an enclosing block); copy so sibling branches don't leak.
		local := make(map[types.Object]token.Pos, len(held))
		for k, v := range held {
			local[k] = v
		}
		for _, stmt := range list {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if obj, method, ok := p.mutexMethodCall(call); ok {
						if tickPos, isTick := tickMutexes[obj]; isTick {
							switch method {
							case "Lock", "RLock":
								local[obj] = tickPos
								continue
							case "Unlock", "RUnlock":
								delete(local, obj)
								continue
							}
						} else if (method == "Lock" || method == "RLock") && len(local) > 0 {
							p.reportHeldBlocking(call.Pos(), "acquiring a second lock", local)
							continue
						}
					}
				}
			case *ast.DeferStmt:
				// defer mu.Unlock() does not end the critical section for
				// the rest of this list; nothing to do.
				continue
			}
			p.scanStmtForBlocking(stmt, local, scanList)
		}
	}
	scanList(body.List, map[types.Object]token.Pos{})
}

// scanStmtForBlocking inspects one statement (recursing into nested
// blocks with the current held set) and reports blocking operations
// when any tick mutex is held.
func (p *Pass) scanStmtForBlocking(stmt ast.Stmt, held map[types.Object]token.Pos, scanList func([]ast.Stmt, map[types.Object]token.Pos)) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // runs later, on its own stack
		case *ast.BlockStmt:
			scanList(s.List, held)
			return false
		case *ast.CaseClause:
			scanList(s.Body, held)
			return false
		case *ast.CommClause:
			scanList(s.Body, held)
			return false
		case *ast.SendStmt:
			if len(held) > 0 {
				p.reportHeldBlocking(s.Pos(), "a channel send", held)
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && len(held) > 0 {
				p.reportHeldBlocking(s.Pos(), "a channel receive", held)
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !selectHasDefault(s) {
				p.reportHeldBlocking(s.Pos(), "a select with no default", held)
			}
		case *ast.CallExpr:
			if obj, method, ok := p.mutexMethodCall(s); ok && (method == "Lock" || method == "RLock") {
				if _, already := held[obj]; !already && len(held) > 0 {
					p.reportHeldBlocking(s.Pos(), "acquiring a second lock", held)
				}
			}
		}
		return true
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// reportHeldBlocking emits one diagnostic naming an arbitrary-but-
// deterministic held mutex (the map has at most a couple of entries;
// pick the earliest tick position for stability).
func (p *Pass) reportHeldBlocking(pos token.Pos, what string, held map[types.Object]token.Pos) {
	var name string
	var tickPos token.Pos
	for obj, tp := range held {
		if name == "" || tp < tickPos {
			name, tickPos = obj.Name(), tp
		}
	}
	p.Reportf(pos, "locksimclock",
		"%s while holding %s, which the simclock tick path locks at %s; a parked tick freezes virtual time — move the blocking operation outside the critical section or annotate with %s locksimclock <reason>",
		what, name, p.Fset.Position(tickPos), allowPrefix)
}
