package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrSwallowAnalyzer flags discarded error results on write-path method
// calls: bare-statement or blank-assigned calls to Write*/Encode/Flush/
// Sync methods, and to any method of a type that implements io.Writer.
// The repo's journals, wire writers, and trace encoders follow the
// sticky-error pattern — the first lost write error turns every later
// frame into garbage that only surfaces as a fingerprint mismatch three
// stages downstream. A genuinely best-effort write (a farewell message
// on a dying connection) is annotated //lint:allow errswallow with the
// argument for why the error is unrecoverable anyway.
//
// Plain functions (fmt.Fprintf, ...) are deliberately out of scope: the
// rule targets the package's own writer objects, where a swallowed
// error breaks the sticky-error chain, not terminal output.
var ErrSwallowAnalyzer = &Analyzer{
	Name: "errswallow",
	Doc:  "forbid discarding the error result of writer/encoder/journal method calls",
	Run:  runErrSwallow,
}

// writeMethodNames are method names whose error result is load-bearing
// regardless of the receiver's type.
var writeMethodNames = map[string]bool{
	"Encode": true, "Flush": true, "Sync": true,
}

// ioWriterIface is a hand-built io.Writer, so the check does not need
// to load the io package for every fixture: interface{ Write([]byte)
// (int, error) }.
var ioWriterIface = func() *types.Interface {
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

func runErrSwallow(pass *Pass) {
	if pass.Info == nil {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 || !allBlank(s.Lhs) {
					return true
				}
				call, _ = s.Rhs[0].(*ast.CallExpr)
			default:
				return true
			}
			if call == nil {
				return true
			}
			if name, ok := pass.swallowedWriteError(call); ok {
				pass.Reportf(call.Pos(), "errswallow",
					"error result of %s is discarded; write-path errors are sticky — check it, or annotate a best-effort write with %s errswallow <reason>",
					name, allowPrefix)
			}
			return true
		})
	}
}

// allBlank reports whether every assignment target is the blank
// identifier — the `_ = w.Flush()` and `_, _ = w.Write(b)` shapes.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// swallowedWriteError reports whether call is a method call whose final
// result is an error and whose receiver/name marks it as a write-path
// operation. Returns a printable name for the diagnostic.
func (p *Pass) swallowedWriteError(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selInfo, ok := p.Info.Selections[sel]
	if !ok || selInfo.Kind() != types.MethodVal {
		return "", false // qualified function or field access, not a method
	}
	sig, ok := selInfo.Obj().Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return "", false
	}
	recv := selInfo.Recv()
	name := sel.Sel.Name
	switch receiverPkgPath(recv) {
	case "strings", "bytes", "hash":
		// Builder, Buffer, and Hash writes are documented to never
		// return a non-nil error; flagging them trains people to write
		// meaningless checks.
		return "", false
	case "bufio":
		// bufio.Writer latches its first error and re-reports it from
		// every later call; the mandatory checkpoint is Flush, which
		// stays in scope.
		if name != "Flush" {
			return "", false
		}
	}
	writeish := writeMethodNames[name] ||
		strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "write")
	if !writeish {
		if benignWriterMethods[name] {
			return "", false
		}
		if !types.Implements(recv, ioWriterIface) &&
			!types.Implements(types.NewPointer(recv), ioWriterIface) {
			return "", false
		}
	}
	return types.ExprString(sel), true
}

// benignWriterMethods are error-returning methods on writer types whose
// discarded error is conventional, not a broken sticky-error chain:
// teardown and deadline bookkeeping, not payload writes.
var benignWriterMethods = map[string]bool{
	"Close": true, "CloseRead": true, "CloseWrite": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// receiverPkgPath returns the import path of the package declaring the
// receiver's (pointer-stripped) named type, or "" when there is none.
func receiverPkgPath(recv types.Type) string {
	t := recv
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}
