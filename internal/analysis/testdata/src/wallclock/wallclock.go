// Package wallclock is a fixture for the wallclock analyzer: wall-clock
// reads must be flagged, pure time.Duration arithmetic must not.
package wallclock

import (
	"time"
	stdtime "time"
)

func bad() {
	_ = time.Now()                   // want wallclock "time.Now"
	_ = time.Since(time.Time{})      // want wallclock "time.Since"
	_ = stdtime.Now()                // want wallclock "time.Now"
	time.Sleep(time.Millisecond)     // want wallclock "time.Sleep"
	_ = time.Tick(time.Second)       // want wallclock "time.Tick"
	_ = time.After(time.Second)      // want wallclock "time.After"
	t := time.NewTicker(time.Second) // want wallclock "time.NewTicker"
	t.Stop()
	f := time.Now // want wallclock "time.Now"
	_ = f
}

// good: simulated time is a time.Duration; conversions, constants, and
// arithmetic never touch the wall clock.
func good(d time.Duration) time.Duration {
	if d < 20*time.Millisecond {
		return time.Second
	}
	return d + time.Millisecond
}

type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

// shadowed: a local identifier named time is not the time package.
func shadowed() int {
	time := fakeClock{}
	return time.Now()
}
