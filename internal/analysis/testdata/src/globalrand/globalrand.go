// Package globalrand is a fixture for the globalrand analyzer: draws
// from the process-global math/rand source must be flagged, seeded
// *rand.Rand values must not.
package globalrand

import (
	"math/rand"
	mrand "math/rand"
)

func bad() {
	_ = rand.Intn(10)                  // want globalrand "rand.Intn"
	_ = rand.Float64()                 // want globalrand "rand.Float64"
	rand.Seed(1)                       // want globalrand "rand.Seed"
	_ = mrand.Perm(3)                  // want globalrand "rand.Perm"
	rand.Shuffle(2, func(i, j int) {}) // want globalrand "rand.Shuffle"
	_ = rand.NormFloat64()             // want globalrand "rand.NormFloat64"
}

// good: constructors are how seeded randomness is made, and methods on
// a threaded *rand.Rand are the sanctioned draw.
func good(rng *rand.Rand) float64 {
	local := rand.New(rand.NewSource(7))
	return local.Float64() + rng.Float64() + float64(rng.Intn(3))
}
