// Package loadtype is a fixture for the loader's type-check-failure
// path: a type error must surface as a [lint] diagnostic while the
// analyzers keep working from the partial type information.
package loadtype

import "time"

var wrong int = "not an int" // want lint "cannot use"

func stillLinted() time.Time {
	return time.Now() // want wallclock "time.Now"
}
