// Package floateq is a fixture for the floateq analyzer: ==/!= between
// floating-point operands must be flagged; integer comparisons, the NaN
// idiom, and constant folding must not.
package floateq

const eps = 1e-9

func bad(a, b float64, c float32) bool {
	if a == b { // want floateq "=="
		return true
	}
	if c != 3.14 { // want floateq "!="
		return true
	}
	return a == 0 // want floateq "=="
}

func good(a, b float64, n int) bool {
	if n == 0 {
		return false
	}
	if a != a { // the standard NaN test is exact by design
		return true
	}
	const x = 1.5
	if x == 1.5 { // both sides constant: folded at compile time
		return absDiff(a, b) < eps
	}
	return false
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
