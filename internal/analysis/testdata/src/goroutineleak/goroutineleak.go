// Package goroutineleak is the fixture for the goroutineleak analyzer:
// a launched goroutine must have a termination path.
package goroutineleak

var flag bool

type pumpOwner struct {
	ch   chan int
	quit chan struct{}
}

func leakClosure(ch chan int) {
	go func() { // want goroutineleak "no termination path"
		for {
			select {
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// breakTrap shows the classic trap: the unlabeled break targets the
// select, not the loop, so the loop still never exits.
func breakTrap(ch chan int) {
	go func() { // want goroutineleak "no termination path"
		for {
			select {
			case <-ch:
				break
			}
		}
	}()
}

func cleanQuit(ch chan int, quit chan struct{}) {
	go func() {
		for {
			select {
			case <-ch:
			case <-quit:
				return
			}
		}
	}()
}

func cleanRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

func cleanConditionalBreak(ch chan int) {
	go func() {
		for {
			if flag {
				break
			}
			<-ch
		}
	}()
}

func cleanLabeledBreak(ch chan int) {
	go func() {
	pump:
		for {
			select {
			case v := <-ch:
				if v < 0 {
					break pump
				}
			}
		}
	}()
}

func spin() {
	for {
	}
}

func leakDecl() {
	go spin() // want goroutineleak "no termination path"
}

func (p *pumpOwner) loop() {
	for {
		select {
		case <-p.ch:
		}
	}
}

func (p *pumpOwner) start() {
	go p.loop() // want goroutineleak "no termination path"
}

// startForever shows the suppression path for a deliberate
// process-lifetime goroutine.
func startForever() {
	go spin() //lint:allow goroutineleak fixture: process-lifetime pump, torn down by os.Exit
}
