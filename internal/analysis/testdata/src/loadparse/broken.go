// broken.go cannot be parsed: the declaration below is missing its
// parameter list closer. The loader must report it and keep going.
package loadparse

func broken( { // want lint "parse failed"
