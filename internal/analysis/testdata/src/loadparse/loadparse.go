// Package loadparse is a fixture for the loader's parse-failure path:
// the unparseable sibling file broken.go must surface as a [lint]
// diagnostic while this file is still parsed and analyzed.
package loadparse

import "time"

func stillLinted() time.Time {
	return time.Now() // want wallclock "time.Now"
}
