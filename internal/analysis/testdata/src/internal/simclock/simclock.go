// Package simclock is a fixture proving the wallclock rule exempts the
// sanctioned clock package: a path ending in internal/simclock may read
// the wall clock freely (the real one wraps it behind deterministic
// simulated time).
package simclock

import "time"

// Wall returns the wall clock; allowed only here.
func Wall() time.Time {
	return time.Now()
}
