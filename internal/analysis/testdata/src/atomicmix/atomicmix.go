// Package atomicmix is the fixture for the atomicmix analyzer: a
// variable touched through sync/atomic anywhere must be touched through
// sync/atomic everywhere.
package atomicmix

import "sync/atomic"

type counter struct {
	hot  int64 // accessed via atomics
	cold int64 // plain everywhere: fine
	solo int64 // atomic everywhere: fine
}

var shared int64

func (c *counter) inc() {
	atomic.AddInt64(&c.hot, 1)
	atomic.StoreInt64(&c.solo, 7)
	c.cold++
}

func (c *counter) mixedRead() int64 {
	return c.hot // want atomicmix "accessed via sync/atomic"
}

func (c *counter) mixedWrite() {
	c.hot = 0 // want atomicmix "accessed via sync/atomic"
}

func (c *counter) cleanReads() int64 {
	return atomic.LoadInt64(&c.hot) + atomic.LoadInt64(&c.solo) + c.cold
}

func bumpShared() {
	atomic.AddInt64(&shared, 1)
}

func peekShared() int64 {
	return shared // want atomicmix "accessed via sync/atomic"
}

// resetDuringInit shows the suppression path: single-goroutine phases
// (construction, teardown) may use plain access with an ownership
// argument.
func resetDuringInit(c *counter) {
	c.hot = 0 //lint:allow atomicmix fixture: constructor runs before any goroutine can observe the field
}
