// Package loadimport is a fixture for the loader's missing-import
// path: an import that resolves nowhere must surface as a [lint]
// diagnostic instead of aborting, and syntactic analysis of the rest of
// the file must still run.
package loadimport

import (
	"time"

	nosuch "no/such/module/anywhere" // want lint "could not import"
)

func stillLinted() time.Time {
	_ = nosuch.Thing
	return time.Now() // want wallclock "time.Now"
}
