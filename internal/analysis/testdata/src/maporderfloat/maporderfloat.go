// Package maporderfloat is a fixture for the maporderfloat analyzer:
// order-dependent float reductions in map-iteration order must be
// flagged; per-key aggregation, integer accumulation, and sorted-key
// iteration must not.
package maporderfloat

import "sort"

func badSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want maporderfloat "+="
	}
	return sum
}

func badSelfAssign(m map[string]float64) float64 {
	prod := 1.0
	for _, v := range m {
		prod = prod * v // want maporderfloat "x = x *"
	}
	return prod
}

func badNested(m map[string][]float64) float64 {
	var sum float64
	for _, vs := range m {
		for _, v := range vs {
			sum += v // want maporderfloat "+="
		}
	}
	return sum
}

func badAppend(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v) // want maporderfloat "appending floats"
	}
	return vals
}

// goodPerKey accumulates into a cell indexed by the range key: each key
// is visited exactly once, so the result is order-independent.
func goodPerKey(runs map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range runs {
		out[k] += v * 2
	}
	return out
}

// goodSorted is the canonical fix: collect keys, sort, reduce over the
// slice.
func goodSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// goodInt: integer addition is associative; map order cannot change the
// result.
func goodInt(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
