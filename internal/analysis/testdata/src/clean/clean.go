// Package clean is the negative fixture: every violation below carries
// a well-formed suppression, so the analyzers must report nothing.
package clean

import (
	"math/rand"
	"time"
)

// stamp demonstrates a line-level suppression on the violating line.
func stamp() time.Time {
	return time.Now() //lint:allow wallclock fixture: line-level suppression
}

// above demonstrates a suppression on the line preceding the violation.
func above() time.Time {
	//lint:allow wallclock fixture: suppression covers the next line
	return time.Now()
}

// session demonstrates a function-level suppression: a directive in the
// doc comment covers the whole body.
//
//lint:allow wallclock fixture: func-level suppression covers every site in the body
func session() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

// draw demonstrates that other rules suppress the same way.
func draw() int {
	return rand.Intn(6) //lint:allow globalrand fixture: demo dice roll, determinism irrelevant
}

// both demonstrates one comma-list directive suppressing two rules that
// trip on the same line.
func both() bool {
	return rand.Float64() == 0 //lint:allow globalrand,floateq fixture: comma list covers both violations on this line
}
