// Test files are exempt from every rule: this file is full of raw
// violations and the clean package must still produce zero diagnostics.
package clean

import (
	"math/rand"
	"testing"
	"time"
)

func TestExempt(t *testing.T) {
	start := time.Now()
	_ = rand.Intn(10)
	var sum float64
	m := map[string]float64{"a": 1}
	for _, v := range m {
		sum += v
	}
	if sum == 1.0 {
		t.Log(time.Since(start))
	}
}
