// Package errswallow is the fixture for the errswallow analyzer:
// discarded errors on write-path method calls break the sticky-error
// chain.
package errswallow

import (
	"bufio"
	"bytes"
	"strings"
)

type journal struct{ err error }

func (j *journal) WriteRecord(b []byte) error { return j.err }
func (j *journal) Flush() error               { return j.err }
func (j *journal) Encode(v any) error         { return j.err }
func (j *journal) rename() error              { return j.err }

// sink implements io.Writer, so even its oddly named mutators are
// write-path.
type sink struct{}

func (s *sink) Write(p []byte) (int, error) { return len(p), nil }
func (s *sink) Push(b []byte) error         { return nil }
func (s *sink) Close() error                { return nil }

func swallowed(j *journal, s *sink, bw *bufio.Writer) {
	j.WriteRecord(nil)     // want errswallow "WriteRecord"
	_ = j.WriteRecord(nil) // want errswallow "WriteRecord"
	j.Encode(1)            // want errswallow "Encode"
	defer j.Flush()        // want errswallow "Flush"
	s.Push(nil)            // want errswallow "Push"
	_ = bw.Flush()         // want errswallow "Flush"
}

func clean(j *journal, s *sink, bw *bufio.Writer, sb *strings.Builder, buf *bytes.Buffer) error {
	if err := j.WriteRecord(nil); err != nil { // checked: fine
		return err
	}
	_ = j.rename()      // not write-path
	_ = s.Close()       // teardown, not a payload write
	sb.WriteString("x") // strings.Builder never fails
	buf.WriteByte('y')  // bytes.Buffer never fails
	bw.WriteString("z") // bufio latches the error; Flush is the checkpoint
	return bw.Flush()
}

// farewell shows the suppression path for a genuinely best-effort
// write.
func farewell(j *journal) {
	//lint:allow errswallow fixture: best-effort goodbye on a connection that is closing either way
	_ = j.WriteRecord(nil)
}
