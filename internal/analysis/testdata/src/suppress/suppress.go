// Package suppress is a fixture for the //lint:allow failure modes:
// malformed directives are reported under the pseudo-rule "lint" and
// must NOT suppress the violation they sit next to.
package suppress

import "time"

// flagged shows that a suppression without a reason is malformed: the
// directive itself is reported, and the wall-clock read below it is
// still flagged.
func flagged() time.Time {
	// want+1 lint "missing reason"
	//lint:allow wallclock
	return time.Now() // want wallclock "time.Now"
}

// A typo in the rule name is reported, not silently ignored.
// want+1 lint "unknown rule"
//lint:allow wallclok oops, rule name has a typo

// A bare directive with nothing after it is reported too.
// want+1 lint "missing rule name"
//lint:allow

// A comma list with an empty element (trailing comma, doubled comma, or
// a space after the comma) is malformed and suppresses nothing.
// want+1 lint "empty rule name"
//lint:allow wallclock, the space after the comma splits the list

// A comma list containing a typo is malformed as a whole.
// want+1 lint "unknown rule"
//lint:allow wallclock,wallclok second rule has a typo

// allowed shows a well-formed suppression working next to the
// malformed ones.
func allowed() time.Time {
	return time.Now() //lint:allow wallclock fixture: a valid suppression next to malformed ones
}
