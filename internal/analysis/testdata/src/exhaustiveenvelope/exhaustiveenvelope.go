// Package exhaustiveenvelope is the fixture for the exhaustiveenvelope
// analyzer: a switch over an enum covers every declared constant or
// rejects unknown values in a default.
package exhaustiveenvelope

import "errors"

type kind uint8

const (
	kindA kind = iota + 1
	kindB
	kindC
)

// A string-keyed wire enum: no named type, one const group.
const (
	evOpen  = "open"
	evClose = "close"
	evError = "err"
)

var errUnknown = errors.New("unknown kind")

func partialNoDefault(k kind) int {
	switch k { // want exhaustiveenvelope "missing kindC"
	case kindA:
		return 1
	case kindB:
		return 2
	}
	return 0
}

func fullCoverage(k kind) int {
	switch k {
	case kindA, kindB:
		return 1
	case kindC:
		return 2
	}
	return 0
}

func rejectingDefault(k kind) error {
	switch k {
	case kindA:
		return nil
	default:
		return errUnknown
	}
}

func silentDefault(k kind) {
	switch k {
	case kindA:
	default: // want exhaustiveenvelope "silently drops"
	}
}

func stringEnumPartial(t string) int {
	switch t { // want exhaustiveenvelope "missing evError"
	case evOpen:
		return 1
	case evClose:
		return 2
	}
	return 0
}

func stringEnumFull(t string) int {
	switch t {
	case evOpen, evClose:
		return 1
	case evError:
		return 2
	}
	return 0
}

func literalCases(s string) int {
	switch s { // literals are not an enum: out of scope
	case "x":
		return 1
	}
	return 0
}

// filter shows the suppression path for a deliberately partial switch
// (a filter, not a dispatcher).
func filter(k kind) bool {
	//lint:allow exhaustiveenvelope fixture: deliberate filter, non-A kinds fall through
	switch k {
	case kindA:
		return true
	}
	return false
}
