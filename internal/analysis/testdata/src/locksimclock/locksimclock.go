// Package locksimclock is the fixture for the locksimclock analyzer:
// no blocking operation while holding a mutex a simclock tick path also
// locks.
package locksimclock

import "sync"

type sched struct {
	mu      sync.Mutex // locked by the tick path
	schedMu sync.Mutex // locked by a Schedule closure
	plainMu sync.Mutex // never near a tick
	other   sync.Mutex
	ch      chan int
	state   int
}

// onTickAdvance is a tick-path function by name; mu becomes a tick
// mutex.
func (s *sched) onTickAdvance() {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
}

type clock struct{}

func (c *clock) Schedule(after int, fn func()) { fn() }

// wire marks schedMu as tick-path through the scheduled closure.
func wire(c *clock, s *sched) {
	c.Schedule(1, func() {
		s.schedMu.Lock()
		s.state++
		s.schedMu.Unlock()
	})
}

func (s *sched) blockingSend(v int) {
	s.mu.Lock()
	s.ch <- v // want locksimclock "channel send"
	s.mu.Unlock()
}

func (s *sched) blockingRecv() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want locksimclock "channel receive"
}

func (s *sched) blockingSelect() {
	s.mu.Lock()
	select { // want locksimclock "select with no default"
	case v := <-s.ch:
		s.state = v
	}
	s.mu.Unlock()
}

func (s *sched) secondLock() {
	s.mu.Lock()
	s.other.Lock() // want locksimclock "second lock"
	s.other.Unlock()
	s.mu.Unlock()
}

func (s *sched) heldSchedMu() {
	s.schedMu.Lock()
	<-s.ch // want locksimclock "channel receive"
	s.schedMu.Unlock()
}

func (s *sched) cleanAfterUnlock(v int) {
	s.mu.Lock()
	s.state = v
	s.mu.Unlock()
	s.ch <- v // lock already released
}

func (s *sched) cleanTrySend() {
	s.mu.Lock()
	select { // non-blocking: has a default
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}

func (s *sched) cleanPlainMutex(v int) {
	s.plainMu.Lock()
	s.ch <- v // plainMu is on no tick path
	s.plainMu.Unlock()
}

// notify shows the suppression path: a send that provably cannot block.
func (s *sched) notify() {
	s.mu.Lock()
	//lint:allow locksimclock fixture: ch is buffered with one slot reserved per caller
	s.ch <- 1
	s.mu.Unlock()
}
