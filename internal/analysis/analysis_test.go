package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Each fixture package under testdata/src encodes its expected
// diagnostics as `// want <rule> "<substring>"` markers on the
// violating line (`// want+1` points at the next line, for diagnostics
// raised on comments). Packages without markers must be clean.
var fixtureDirs = []string{
	"wallclock",
	"globalrand",
	"maporderfloat",
	"floateq",
	"atomicmix",
	"goroutineleak",
	"errswallow",
	"exhaustiveenvelope",
	"locksimclock",
	"suppress",
	"clean",
	"internal/simclock",
	"loadparse",
	"loadimport",
	"loadtype",
}

func TestFixtures(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range fixtureDirs {
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			dir := filepath.Join("testdata", "src", filepath.FromSlash(name))
			diags, err := loader.LintDir(dir, Analyzers())
			if err != nil {
				t.Fatal(err)
			}
			wants := parseWants(t, dir)
			matchDiagnostics(t, diags, wants)
		})
	}
}

// TestRepoIsClean lints the real module: the repository itself must
// stay free of unsuppressed violations, or `make lint` (and with it
// tier-1 verification) breaks.
func TestRepoIsClean(t *testing.T) {
	root := filepath.Join("..", "..")
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var failures []string
	linted := 0
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		// The skip test must not apply to the walk root itself: its
		// basename here is "..", which the hidden-dir rule would match
		// and silently skip the entire repository (the regression that
		// made this test vacuous until PR 7).
		if path != root {
			name := d.Name()
			if name == "testdata" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
				return filepath.SkipDir
			}
		}
		diags, err := loader.LintDir(path, Analyzers())
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		linted++
		for _, dg := range diags {
			failures = append(failures, dg.String())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if linted < 10 {
		t.Fatalf("walk visited only %d directories — the repo walk is broken (vacuous pass)", linted)
	}
	for _, f := range failures {
		t.Errorf("unsuppressed violation: %s", f)
	}
}

type want struct {
	file   string
	line   int
	rule   string
	substr string
}

var wantRe = regexp.MustCompile(`// want(\+1)? ([a-z]+) "([^"]*)"`)

// parseWants scans the fixture's non-test Go files for expectation
// markers.
func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				w := want{file: path, line: i + 1, rule: m[2], substr: m[3]}
				if m[1] == "+1" {
					w.line++
				}
				wants = append(wants, w)
			}
		}
	}
	return wants
}

// matchDiagnostics checks the produced diagnostics against the want
// markers: every want must be satisfied by exactly one diagnostic and
// no diagnostic may go unclaimed.
func matchDiagnostics(t *testing.T, diags []Diagnostic, wants []want) {
	t.Helper()
	claimed := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if claimed[i] || d.Rule != w.rule || d.Pos.Line != w.line {
				continue
			}
			if filepath.Clean(d.Pos.Filename) != filepath.Clean(w.file) {
				continue
			}
			if !strings.Contains(d.Message, w.substr) {
				continue
			}
			claimed[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("missing diagnostic: %s:%d [%s] containing %s",
				w.file, w.line, w.rule, strconv.Quote(w.substr))
		}
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}
