package analysis

import (
	"go/token"
	"slices"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	known := RuleNames()
	cases := []struct {
		name    string
		text    string
		matched bool
		wantErr string // "" = no error
		rules   []string
		reason  string
	}{
		{name: "valid", text: "//lint:allow wallclock measuring bench cost", matched: true, rules: []string{"wallclock"}, reason: "measuring bench cost"},
		{name: "valid tabs", text: "//lint:allow\tfloateq\texact sentinel", matched: true, rules: []string{"floateq"}, reason: "exact sentinel"},
		{name: "reason whitespace collapsed", text: "//lint:allow globalrand   a   b  ", matched: true, rules: []string{"globalrand"}, reason: "a b"},
		{name: "comma list", text: "//lint:allow wallclock,globalrand one site trips both", matched: true, rules: []string{"wallclock", "globalrand"}, reason: "one site trips both"},
		{name: "comma list three", text: "//lint:allow wallclock,globalrand,floateq demo loop", matched: true, rules: []string{"wallclock", "globalrand", "floateq"}, reason: "demo loop"},
		{name: "missing reason", text: "//lint:allow wallclock", matched: true, wantErr: "missing reason"},
		{name: "comma list missing reason", text: "//lint:allow wallclock,globalrand", matched: true, wantErr: "missing reason"},
		{name: "missing rule", text: "//lint:allow", matched: true, wantErr: "missing rule name"},
		{name: "missing rule trailing space", text: "//lint:allow   ", matched: true, wantErr: "missing rule name"},
		{name: "unknown rule", text: "//lint:allow wallclok typo", matched: true, wantErr: "unknown rule"},
		{name: "unknown rule in list", text: "//lint:allow wallclock,wallclok typo in second", matched: true, wantErr: "unknown rule"},
		{name: "trailing comma", text: "//lint:allow wallclock, reason here", matched: true, wantErr: "empty rule name"},
		{name: "doubled comma", text: "//lint:allow wallclock,,globalrand reason", matched: true, wantErr: "empty rule name"},
		{name: "leading comma", text: "//lint:allow ,wallclock reason", matched: true, wantErr: "empty rule name"},
		{name: "not a directive", text: "// lint:allow wallclock spaced out", matched: false},
		{name: "prose prefix", text: "//lint:allowance is prose", matched: false},
		{name: "unrelated comment", text: "// just a comment", matched: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			allow, matched, err := ParseAllow(tc.text, known)
			if matched != tc.matched {
				t.Fatalf("matched = %v, want %v", matched, tc.matched)
			}
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.matched {
				return
			}
			if !slices.Equal(allow.Rules, tc.rules) || allow.Reason != tc.reason {
				t.Fatalf("got %+v, want rules=%v reason=%q", allow, tc.rules, tc.reason)
			}
		})
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "internal/core/core.go", Line: 53, Column: 13},
		Rule:    "wallclock",
		Message: "time.Now reads the wall clock",
	}
	want := "internal/core/core.go:53: [wallclock] time.Now reads the wall clock"
	if got := d.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
