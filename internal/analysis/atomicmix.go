package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMixAnalyzer flags variables (struct fields and package-level
// vars) that are accessed through sync/atomic in one place and by plain
// read/write in another — within the same package, which is where Go
// encapsulation keeps a field's accessors. Mixed access is the classic
// silent race: the plain load can read a torn or stale value and the
// race detector only catches it when the schedule cooperates, while the
// campaign's telemetry counters (the heaviest atomic users here) must
// stay exact under any worker interleaving. Identity is resolved with
// go/types, so shadowing, embedding, and aliased imports do not fool
// the check. Deliberate single-goroutine fast paths carry a
// //lint:allow atomicmix annotation with the ownership argument.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "forbid mixing sync/atomic access with plain reads/writes of the same variable",
	Run:  runAtomicMix,
}

// atomicAddrFns are the sync/atomic functions whose first argument is
// the address of the shared variable.
var atomicAddrFns = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicMix(pass *Pass) {
	if pass.Info == nil {
		return
	}
	// First walk: every &x passed to an atomic function marks x's object
	// as atomically accessed, and the selector/ident node itself as
	// sanctioned (so the second walk does not count it as plain access).
	atomicAt := make(map[types.Object]token.Pos) // first atomic site per object
	sanctioned := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !atomicAddrFns[sel.Sel.Name] {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || !pass.isPkgIdent(file, pkgID, "sync/atomic") {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			target := ast.Unparen(addr.X)
			obj := pass.accessedObject(target)
			if obj == nil {
				return true
			}
			if _, seen := atomicAt[obj]; !seen {
				atomicAt[obj] = call.Pos()
			}
			sanctioned[target] = true
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}
	// Second walk: any other use of those objects is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok || sanctioned[expr] {
				return true
			}
			var obj types.Object
			switch e := expr.(type) {
			case *ast.SelectorExpr:
				obj = pass.accessedObject(e)
			case *ast.Ident:
				// Only package-level vars reach atomicAt via bare idents;
				// field accesses always come through a SelectorExpr (whose
				// Sel ident must not be double-counted here).
				if use, ok := pass.Info.Uses[e]; ok {
					if v, isVar := use.(*types.Var); isVar && !v.IsField() {
						obj = use
					}
				}
			default:
				return true
			}
			if obj == nil {
				return true
			}
			first, isAtomic := atomicAt[obj]
			if !isAtomic || sanctioned[expr] {
				return true
			}
			pass.Reportf(expr.Pos(), "atomicmix",
				"%s is accessed via sync/atomic at %s but plainly here; every access must go through sync/atomic (or prove single-goroutine ownership with %s atomicmix <reason>)",
				obj.Name(), pass.Fset.Position(first), allowPrefix)
			return false // don't descend into the selector's own idents
		})
	}
}

// accessedObject resolves the variable object an expression reads or
// writes: the field for a selector, the var for an identifier. Returns
// nil for anything else (calls, indexes of computed values, ...).
func (p *Pass) accessedObject(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := p.Info.Selections[x]; ok {
			if v, ok := selInfo.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		}
		// Qualified identifier (pkg.Var).
		if obj, ok := p.Info.Uses[x.Sel]; ok {
			if v, ok := obj.(*types.Var); ok {
				return v
			}
		}
	case *ast.Ident:
		if obj, ok := p.Info.Uses[x]; ok {
			if v, ok := obj.(*types.Var); ok {
				return v
			}
		}
	}
	return nil
}
