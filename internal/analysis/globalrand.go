package analysis

import "go/ast"

// globalRandBanned lists the package-level math/rand functions backed
// by the process-global source. Constructors (rand.New, rand.NewSource,
// rand.NewZipf) and methods on a *rand.Rand value are allowed — that is
// exactly how seeded randomness is threaded from the plan phase.
var globalRandBanned = map[string]bool{
	"Int":         true,
	"Intn":        true,
	"Int31":       true,
	"Int31n":      true,
	"Int63":       true,
	"Int63n":      true,
	"Uint32":      true,
	"Uint64":      true,
	"Float32":     true,
	"Float64":     true,
	"NormFloat64": true,
	"ExpFloat64":  true,
	"Perm":        true,
	"Shuffle":     true,
	"Read":        true,
	"Seed":        true,
}

// GlobalRandAnalyzer forbids the shared global math/rand source. The
// global source is mutated by every caller in the process, so any draw
// from it depends on unrelated goroutines' scheduling — the campaign's
// plan/execute split only stays bit-deterministic because all
// randomness flows through explicitly seeded *rand.Rand values.
var GlobalRandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand functions; thread seeded *rand.Rand values instead",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !globalRandBanned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if !pass.isPkgIdent(file, id, "math/rand") && !pass.isPkgIdent(file, id, "math/rand/v2") {
				return true
			}
			pass.Reportf(sel.Pos(), "globalrand",
				"rand.%s draws from the process-global source (schedule-dependent); use a seeded *rand.Rand threaded from the plan phase",
				sel.Sel.Name)
			return true
		})
	}
}
