package analysis

import (
	"go/ast"
	"go/token"
)

// FloatEqAnalyzer flags == and != between floating-point operands.
// Exact float equality silently encodes an assumption about rounding:
// two runs that should agree can differ in the last ulp (different
// summation order, fused multiply-add, 387 vs SSE), flipping the
// comparison and with it a collision count or an exclusion decision.
// Sentinel checks that are genuinely exact (a value assigned from a
// literal and never computed with) carry a //lint:allow floateq
// annotation; the NaN idiom `x != x` is recognized and allowed.
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point operands; compare with an epsilon or restructure",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.typeOf(bin.X), pass.typeOf(bin.Y)
			if !isFloat(xt) && !isFloat(yt) {
				return true
			}
			// Both sides constant: folded at compile time, deterministic.
			if pass.Info != nil {
				xv, yv := pass.Info.Types[bin.X], pass.Info.Types[bin.Y]
				if xv.Value != nil && yv.Value != nil {
					return true
				}
			}
			// `x != x` is the standard NaN test; exact by design.
			if bin.Op == token.NEQ && equalExpr(bin.X, bin.Y) {
				return true
			}
			pass.Reportf(bin.Pos(), "floateq",
				"floating-point %s comparison is rounding-sensitive; compare with an epsilon, use integer state, or annotate a genuinely exact sentinel with %s floateq <reason>",
				bin.Op, allowPrefix)
			return true
		})
	}
}
