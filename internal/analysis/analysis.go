// Package analysis implements teledrive-lint: a repo-specific static
// analyzer that encodes the simulation's determinism invariants as
// machine-checked rules.
//
// The campaign methodology (paper §V-E2) compares golden (NFI) and
// faulty (FI) runs pairwise, so every run must be a pure function of its
// seed. PR 1 repaired two silent violations of that invariant by hand —
// map-iteration float accumulation in the Table III/IV aggregation and
// aliased *Scenario instances — and this package turns the bug classes
// into compile-time checks so they cannot regress:
//
//	wallclock     no time.Now/Since/Tick/... in simulation code; only
//	              internal/simclock may observe time.
//	globalrand    no package-level math/rand functions (shared global
//	              source); randomness is threaded as seeded *rand.Rand.
//	maporderfloat no float accumulation inside `for range` over a map
//	              (iteration order is randomized; float + is not
//	              associative, so sums differ run to run).
//	floateq       no ==/!= between floating-point operands.
//
// PR 7 adds a concurrency-safety and protocol-invariant family. The
// distributed campaign service (PR 6) moved the failure modes from
// "wrong number" to "wedged fleet": a mixed atomic/plain counter read,
// a leaked pump goroutine, a swallowed journal write, a wire switch
// that silently drops an unknown message kind, or a tick-path mutex
// held across a channel send each corrupt a campaign in ways no unit
// test reliably catches:
//
//	atomicmix          a variable accessed via sync/atomic in one place
//	                   must use sync/atomic at every access.
//	goroutineleak      a `go` statement must have a termination path
//	                   (return, quit-channel select, bounded loop).
//	errswallow         write-path method errors (Write*/Encode/Flush/
//	                   Sync, io.Writer receivers) must not be discarded.
//	exhaustiveenvelope a switch over an enum (wire msg kind, session
//	                   phase) covers all constants or rejects unknowns
//	                   via default (the ErrProtocol rule).
//	locksimclock       no blocking operation while holding a mutex a
//	                   simclock tick path also locks.
//
// Legitimate sites (wall-clock measurement of the bench itself, live
// demo loops) are annotated in place:
//
//	started := time.Now() //lint:allow wallclock measuring bench cost, not sim time
//
// The reason is mandatory; a bare //lint:allow is itself reported under
// the pseudo-rule "lint". A suppression on (or in the doc comment of) a
// function declaration covers the whole function. Test files are exempt
// from all rules.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, addressed by resolved source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical `file:line: [rule] message` form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full rule set, in reporting-priority order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		GlobalRandAnalyzer,
		MapOrderFloatAnalyzer,
		FloatEqAnalyzer,
		AtomicMixAnalyzer,
		GoroutineLeakAnalyzer,
		ErrSwallowAnalyzer,
		ExhaustiveEnvelopeAnalyzer,
		LockSimclockAnalyzer,
	}
}

// RuleNames returns the set of rule names accepted by //lint:allow.
func RuleNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// Pass is one package's worth of material handed to each analyzer: the
// parsed files (test files already excluded) and whatever type
// information the checker could compute. Info may be partially filled
// when a package has type errors; analyzers must degrade gracefully.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	PkgPath string

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// typeOf returns the static type of e, or nil when the checker could
// not resolve it (e.g. an import that failed to load).
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// isPkgIdent reports whether id, appearing in file, refers to the
// package imported under path. It prefers type-checker resolution (which
// sees shadowing) and falls back to the file's import table when the
// checker has no verdict for the identifier.
func (p *Pass) isPkgIdent(file *ast.File, id *ast.Ident, path string) bool {
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			pn, ok := obj.(*types.PkgName)
			return ok && pn.Imported().Path() == path
		}
	}
	name := localImportName(file, path)
	return name != "" && id.Name == name
}

// localImportName returns the identifier path is bound to in file, or
// "" when the file does not import it by a usable name.
func localImportName(file *ast.File, path string) string {
	quoted := `"` + path + `"`
	for _, imp := range file.Imports {
		if imp.Path.Value != quoted {
			continue
		}
		if imp.Name == nil {
			// Default name: the last path element.
			base := path
			for i := len(path) - 1; i >= 0; i-- {
				if path[i] == '/' {
					base = path[i+1:]
					break
				}
			}
			return base
		}
		if imp.Name.Name == "_" || imp.Name.Name == "." {
			return ""
		}
		return imp.Name.Name
	}
	return ""
}

// isFloat reports whether t's core type is float32 or float64 (or an
// untyped float constant).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// run applies the analyzers to the pass, filters suppressed findings,
// appends malformed-suppression findings, and returns the remainder in
// deterministic position order.
func run(pass *Pass, analyzers []*Analyzer) []Diagnostic {
	for _, a := range analyzers {
		a.Run(pass)
	}
	sup, supDiags := collectSuppressions(pass.Fset, pass.Files, RuleNames())
	var kept []Diagnostic
	seen := make(map[Diagnostic]bool)
	for _, d := range pass.diags {
		// Nested map ranges can report the same statement twice (once per
		// enclosing range); dedupe on the full diagnostic.
		if !seen[d] && !sup.covers(d) {
			seen[d] = true
			kept = append(kept, d)
		}
	}
	kept = append(kept, supDiags...)
	sortDiagnostics(kept)
	return kept
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
