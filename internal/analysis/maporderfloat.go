package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrderFloatAnalyzer flags order-dependent floating-point
// accumulation inside `for range` over a map. Go randomizes map
// iteration order per run, and float addition/multiplication is not
// associative, so `for _, v := range m { sum += v }` produces a
// different low-order-bit sum on every execution — the exact bug class
// PR 1 fixed by hand in the Table III/IV aggregation (BuildTableIII and
// BuildTableIV now iterate sorted keys). Appending float values in map
// order is flagged too: the slice order feeds whatever reduction runs
// downstream.
var MapOrderFloatAnalyzer = &Analyzer{
	Name: "maporderfloat",
	Doc:  "forbid float accumulation (+=, *=, x = x+v, append) in map-iteration order; iterate sorted keys",
	Run:  runMapOrderFloat,
}

// accumOps are the compound assignment operators whose result depends
// on evaluation order under floating point.
var accumOps = map[token.Token]string{
	token.ADD_ASSIGN: "+=",
	token.SUB_ASSIGN: "-=",
	token.MUL_ASSIGN: "*=",
	token.QUO_ASSIGN: "/=",
}

// selfOps are the binary operators that make `x = x <op> v` an
// accumulation.
var selfOps = map[token.Token]bool{
	token.ADD: true,
	token.SUB: true,
	token.MUL: true,
	token.QUO: true,
}

func runMapOrderFloat(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.typeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true
		})
	}
}

// checkMapRangeBody walks every statement (including nested loops)
// executed per map iteration. Accumulation into a cell indexed by the
// range key itself (`sum[k] += v` inside `for k, v := range m`) is
// exempt: each key is visited exactly once, so the per-cell result is
// independent of iteration order — the grouped-aggregation idiom the
// Table III/IV code uses.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt) {
	keyObj, keyName := rangeKey(pass, rs)
	perKeyCell := func(lhs ast.Expr) bool {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		return ok && isRangeKey(pass, idx.Index, keyObj, keyName)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) == 1 && perKeyCell(as.Lhs[0]) {
			return true
		}
		if op, ok := accumOps[as.Tok]; ok && len(as.Lhs) == 1 && isFloat(pass.typeOf(as.Lhs[0])) {
			pass.Reportf(as.Pos(), "maporderfloat",
				"float %s accumulation inside map iteration: map order is randomized and float %s is not associative; iterate sorted keys",
				op, op[:1])
			return true
		}
		if as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok && selfOps[bin.Op] && isFloat(pass.typeOf(as.Lhs[0])) {
				if equalExpr(as.Lhs[0], bin.X) || equalExpr(as.Lhs[0], bin.Y) {
					pass.Reportf(as.Pos(), "maporderfloat",
						"float accumulation (x = x %s v) inside map iteration: map order is randomized; iterate sorted keys", bin.Op)
					return true
				}
			}
			if isFloatAppend(pass, as.Rhs[0]) {
				pass.Reportf(as.Pos(), "maporderfloat",
					"appending floats in map-iteration order: the slice order is randomized per run; iterate sorted keys or sort before reducing")
			}
		}
		return true
	})
}

// rangeKey extracts the range statement's key variable, when it is a
// named identifier.
func rangeKey(pass *Pass, rs *ast.RangeStmt) (types.Object, string) {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, ""
	}
	if pass.Info != nil {
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj, id.Name
		}
		if obj := pass.Info.Uses[id]; obj != nil { // `for k = range m` form
			return obj, id.Name
		}
	}
	return nil, id.Name
}

// isRangeKey reports whether e is a use of the range key variable.
func isRangeKey(pass *Pass, e ast.Expr, keyObj types.Object, keyName string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || keyName == "" || id.Name != keyName {
		return false
	}
	if keyObj != nil && pass.Info != nil {
		if obj, ok := pass.Info.Uses[id]; ok {
			return obj == keyObj
		}
	}
	return true
}

// isFloatAppend reports whether e is append(s, v...) where the element
// type is floating point.
func isFloatAppend(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if pass.Info != nil {
		// Ensure this is the builtin, not a local function named append.
		if obj, ok := pass.Info.Uses[fn]; ok {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				return false
			}
		}
	}
	s, ok := pass.typeOf(call.Args[0]).(*types.Slice)
	return ok && isFloat(s.Elem())
}

// equalExpr reports whether two expressions are syntactically the same
// simple lvalue: identifiers, selector chains, pointer derefs, and
// index expressions with identifier or literal indices.
func equalExpr(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && equalExpr(x.X, y.X)
	case *ast.StarExpr:
		y, ok := b.(*ast.StarExpr)
		return ok && equalExpr(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && equalExpr(x.X, y.X) && equalExpr(x.Index, y.Index)
	case *ast.BasicLit:
		y, ok := b.(*ast.BasicLit)
		return ok && x.Kind == y.Kind && x.Value == y.Value
	}
	return false
}
