package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks one package directory at a time using
// only the standard library: go/parser for syntax and go/types with a
// two-stage importer — module-local import paths are resolved against
// the module root on disk, everything else falls through to the
// compiler's source importer (GOROOT). No go/packages, no export data.
//
// Load problems never abort the run: an unparseable file, a missing
// import, or a type-check failure is reported as a [lint] diagnostic on
// the offending position and the rest of the package is still analyzed
// with whatever Info the checker managed to compute. A broken package
// therefore fails `make lint` loudly (exit 1 with an addressable
// finding) instead of either crashing the whole pass or being silently
// skipped.
type Loader struct {
	Fset *token.FileSet

	moduleRoot string
	modulePath string
	std        types.Importer
	cache      map[string]*types.Package
	loading    map[string]bool
}

// NewLoader builds a Loader rooted at moduleRoot. When moduleRoot holds
// a go.mod its module path seeds local-import resolution; without one
// (fixture trees) every import resolves through the source importer.
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:       token.NewFileSet(),
		moduleRoot: abs,
		cache:      make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}
	if data, err := os.ReadFile(filepath.Join(abs, "go.mod")); err == nil {
		l.modulePath = moduleLine(string(data))
	}
	// The source importer type-checks dependencies from GOROOT source;
	// force the pure-Go build so cgo-flavoured files (net, os/user)
	// never enter the load.
	build.Default.CgoEnabled = false
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	return l, nil
}

// moduleLine extracts the module path from go.mod content.
func moduleLine(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// Import implements types.Importer over the two-stage resolution.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		return l.importLocal(path)
	}
	return l.std.Import(path)
}

// importLocal type-checks a module-local package (without Info) for use
// as a dependency, with caching and cycle detection.
func (l *Loader) importLocal(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath+"/")))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if pkg == nil {
		return nil, err
	}
	// Cache even on partial success: a dependency with type errors still
	// carries most of its declarations, which beats dropping the import.
	pkg.MarkComplete()
	l.cache[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test Go file in dir, sorted by filename for
// deterministic diagnostics.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// maxTypeDiags caps how many type-check failures one package reports:
// a single missing import cascades into dozens of follow-on errors, and
// the first few are the addressable ones.
const maxTypeDiags = 10

// Load parses and type-checks the package in dir with full Info for
// analysis. It returns nil (no error) for directories with no non-test
// Go files. Parse and type-check failures do not abort the load; they
// are recorded as [lint] diagnostics on the returned Pass and the
// analyzers run over whatever syntax and type information survived.
func (l *Loader) Load(dir string) (*Pass, error) {
	files, loadDiags, err := l.parseDirLenient(dir)
	if err != nil {
		return nil, err
	}
	pkgPath := l.pkgPath(dir)
	if len(files) == 0 {
		if len(loadDiags) == 0 {
			return nil, nil
		}
		// Every file was unparseable: no analysis possible, but the parse
		// diagnostics must still fail the run.
		return &Pass{Fset: l.Fset, PkgPath: pkgPath, diags: loadDiags}, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// Type-check failures (a missing import, an unresolved identifier, a
	// mistyped expression) become [lint] diagnostics: the checker keeps
	// going and analyzers work from the partial Info, but the run fails
	// loudly instead of silently degrading to syntax-only checks.
	var typeDiags []Diagnostic
	truncated := 0
	seen := make(map[string]bool)
	conf := types.Config{Importer: l, Error: func(err error) {
		te, ok := err.(types.Error)
		if !ok {
			return
		}
		// Continuation lines of a multi-part error start with a tab.
		if strings.HasPrefix(te.Msg, "\t") {
			return
		}
		pos := te.Fset.Position(te.Pos)
		key := fmt.Sprintf("%s:%d:%d %s", pos.Filename, pos.Line, pos.Column, te.Msg)
		if seen[key] {
			return
		}
		seen[key] = true
		if len(typeDiags) >= maxTypeDiags {
			truncated++
			return
		}
		typeDiags = append(typeDiags, Diagnostic{
			Pos: pos, Rule: "lint", Message: "type-check failed: " + te.Msg,
		})
	}}
	// Check returns the package even when it accumulated type errors;
	// analyzers work from whatever Info was computed.
	pkg, _ := conf.Check(pkgPath, l.Fset, files, info)
	if truncated > 0 {
		typeDiags = append(typeDiags, Diagnostic{
			Pos:  typeDiags[len(typeDiags)-1].Pos,
			Rule: "lint",
			Message: fmt.Sprintf("type-check failed: %d further errors in this package not shown", truncated),
		})
	}
	// Seed the dependency cache with the freshly checked package — but
	// never replace an instance already vended to importers. Overwriting
	// would split the identity of every type the package declares: a
	// dependent checked earlier holds *old geom.Path while a dependent
	// checked later resolves *new geom.Path, and the checker reports the
	// nonsensical `cannot use x (*geom.Path) as *geom.Path` on perfectly
	// good code (found by PR 7's audit once type errors stopped being
	// swallowed).
	if pkg != nil && strings.HasPrefix(pkgPath, l.modulePath+"/") {
		if _, vended := l.cache[pkgPath]; !vended {
			pkg.MarkComplete()
			l.cache[pkgPath] = pkg
		}
	}
	return &Pass{
		Fset: l.Fset, Files: files, Pkg: pkg, Info: info, PkgPath: pkgPath,
		diags: append(loadDiags, typeDiags...),
	}, nil
}

// parseDirLenient parses every non-test Go file in dir like parseDir,
// but converts per-file syntax errors into [lint] diagnostics (first
// error per file — the rest is cascade) and skips the unparseable file
// instead of failing the whole package.
func (l *Loader) parseDirLenient(dir string) ([]*ast.File, []Diagnostic, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	var diags []Diagnostic
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
		if err != nil {
			diags = append(diags, parseDiag(path, err))
			continue
		}
		files = append(files, f)
	}
	return files, diags, nil
}

// parseDiag converts a parser error into a positioned [lint]
// diagnostic. parser.ParseFile reports a scanner.ErrorList; its first
// entry carries the real position and message, the rest is cascade.
func parseDiag(path string, err error) Diagnostic {
	if list, ok := err.(scanner.ErrorList); ok && len(list) > 0 {
		return Diagnostic{
			Pos: list[0].Pos, Rule: "lint", Message: "parse failed: " + list[0].Msg,
		}
	}
	return Diagnostic{
		Pos: token.Position{Filename: path}, Rule: "lint", Message: "parse failed: " + err.Error(),
	}
}

// pkgPath derives an import-path-shaped identifier for dir.
func (l *Loader) pkgPath(dir string) string {
	abs, err := filepath.Abs(dir)
	if err == nil {
		if rel, err := filepath.Rel(l.moduleRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				if l.modulePath != "" {
					return l.modulePath
				}
				return filepath.Base(abs)
			}
			prefix := l.modulePath
			if prefix == "" {
				prefix = "fixture"
			}
			return prefix + "/" + filepath.ToSlash(rel)
		}
	}
	return filepath.Base(dir)
}

// LintDir loads the package in dir and runs the analyzers over it,
// returning surviving diagnostics in position order. A nil slice with a
// nil error means the directory holds no lintable files.
func (l *Loader) LintDir(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pass, err := l.Load(dir)
	if err != nil || pass == nil {
		return nil, err
	}
	return run(pass, analyzers), nil
}
