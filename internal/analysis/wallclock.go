package analysis

import (
	"go/ast"
	"strings"
)

// wallclockBanned lists the package-level time functions that observe
// or react to the host's wall clock. Pure conversions and constructors
// (time.Duration arithmetic, time.ParseDuration, time.Unix) are fine —
// simulated time is itself a time.Duration.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// WallclockAnalyzer enforces the DESIGN.md §6 invariant: wall-clock
// time never enters the simulation. Every component is driven from
// internal/simclock so a run is a pure function of its seed; one stray
// time.Now() makes golden/faulty pairs incomparable. Measurement sites
// that time the bench itself (not the simulation) carry a
// //lint:allow wallclock annotation with the justification.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock time (time.Now, time.Since, tickers, sleeps) outside internal/simclock",
	Run:  runWallclock,
}

func runWallclock(pass *Pass) {
	// simclock is the sanctioned clock abstraction; its simulated time is
	// a time.Duration and its tests legitimately mention the time package.
	if strings.HasSuffix(pass.PkgPath, "internal/simclock") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallclockBanned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !pass.isPkgIdent(file, id, "time") {
				return true
			}
			pass.Reportf(sel.Pos(), "wallclock",
				"time.%s reads the wall clock; simulation code must use internal/simclock (annotate bench-measurement sites with %s wallclock <reason>)",
				sel.Sel.Name, allowPrefix)
			return true
		})
	}
}
