package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadErrorPathsDoNotAbort pins the loader's failure contract: an
// unparseable file, a missing import, and a type-check failure are each
// reported as [lint] diagnostics while the run continues — LintDir must
// return diagnostics, not an error, and the surviving files must still
// be analyzed (each fixture plants a wallclock violation to prove it).
func TestLoadErrorPathsDoNotAbort(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"loadparse", "loadimport", "loadtype"} {
		t.Run(dir, func(t *testing.T) {
			diags, err := loader.LintDir(filepath.Join("testdata", "src", dir), Analyzers())
			if err != nil {
				t.Fatalf("LintDir aborted: %v", err)
			}
			var lint, wallclock bool
			for _, d := range diags {
				switch d.Rule {
				case "lint":
					lint = true
				case "wallclock":
					wallclock = true
				}
			}
			if !lint {
				t.Errorf("no [lint] diagnostic for the load failure; got %v", diags)
			}
			if !wallclock {
				t.Errorf("load failure stopped analysis: wallclock violation not reported; got %v", diags)
			}
		})
	}
}

// TestLoadAllFilesUnparseable covers the corner where no file in the
// package parses at all: the parse diagnostics must still surface (so
// the run fails loudly) even though there is nothing to analyze.
func TestLoadAllFilesUnparseable(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "only.go"), []byte("package broken\nfunc (\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := loader.LintDir(dir, Analyzers())
	if err != nil {
		t.Fatalf("LintDir aborted: %v", err)
	}
	if len(diags) != 1 || diags[0].Rule != "lint" || !strings.Contains(diags[0].Message, "parse failed") {
		t.Fatalf("want one [lint] parse-failed diagnostic, got %v", diags)
	}
}

// TestLoadTypeErrorCap pins the cascade cap: a package with more than
// maxTypeDiags distinct type errors reports exactly maxTypeDiags of
// them plus one summary line, so one missing import cannot flood the
// output.
func TestLoadTypeErrorCap(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	b.WriteString("package flood\n\n")
	for i := 0; i < maxTypeDiags+5; i++ {
		fmt.Fprintf(&b, "var v%d int = %q\n", i, "not an int")
	}
	if err := os.WriteFile(filepath.Join(dir, "flood.go"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := loader.LintDir(dir, Analyzers())
	if err != nil {
		t.Fatalf("LintDir aborted: %v", err)
	}
	if len(diags) != maxTypeDiags+1 {
		t.Fatalf("want %d capped diagnostics + 1 summary, got %d: %v", maxTypeDiags, len(diags), diags)
	}
	last := diags[len(diags)-1]
	if !strings.Contains(last.Message, "further errors") {
		t.Fatalf("last diagnostic should summarize the truncation, got %v", last)
	}
}

// TestLoadDependencyIdentityStable pins the import-cache contract: once
// a package instance has been vended to dependents, a later direct Load
// of the same directory must not replace the cached instance. The
// regression this guards: Load(mid) caches base for importers, a direct
// Load(base) overwrote the cache with a second instance, and Load(user)
// — importing both — saw two distinct base packages and reported the
// nonsensical `cannot use x (*base.T) as *base.T`.
func TestLoadDependencyIdentityStable(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.test/idy\n\ngo 1.21\n")
	write("base/base.go", "package base\n\ntype T struct{ N int }\n")
	write("mid/mid.go", `package mid

import "example.test/idy/base"

func Make() *base.T { return &base.T{} }
`)
	write("user/user.go", `package user

import (
	"example.test/idy/base"
	"example.test/idy/mid"
)

var V *base.T = mid.Make()
`)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The triggering order: dependency-first (mid caches base), then the
	// direct load of base, then a dependent of both.
	for _, p := range []string{"mid", "base", "user"} {
		diags, err := loader.LintDir(filepath.Join(dir, p), Analyzers())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(diags) != 0 {
			t.Fatalf("%s: unexpected diagnostics (split package identity?): %v", p, diags)
		}
	}
}
