package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveEnvelopeAnalyzer enforces the ErrProtocol rule on enum
// switches: a switch over a wire-message kind or observer-event kind
// must either cover every declared constant of the enum or carry a
// default clause that handles (rejects) unknown values. The failure
// mode it guards is protocol drift — a new msg kind or session phase is
// added, the compiler stays silent, and the peer that doesn't know the
// kind drops it on the floor instead of failing the connection with
// ErrProtocol.
//
// Two enum shapes are recognized:
//
//   - a named defined type with a basic underlying type (MsgType,
//     session.Phase): the family is every package-level constant of
//     exactly that type, wherever the type is declared;
//   - untyped or plain-basic constants (the campaignd msg.T strings):
//     the family is the const declaration group (one `const (...)`
//     block) the case constants come from, provided all of them come
//     from the same group.
//
// A switch whose cases are literals or non-constants is out of scope.
// An intentionally partial switch (a filter, not a dispatcher) is
// annotated //lint:allow exhaustiveenvelope with the reason.
var ExhaustiveEnvelopeAnalyzer = &Analyzer{
	Name: "exhaustiveenvelope",
	Doc:  "require enum switches to cover all declared constants or reject unknowns via default",
	Run:  runExhaustiveEnvelope,
}

func runExhaustiveEnvelope(pass *Pass) {
	if pass.Info == nil {
		return
	}
	groups := pass.constGroups()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			pass.checkEnumSwitch(sw, groups)
			return true
		})
	}
}

// constGroup identifies one `const (...)` declaration block.
type constGroup struct {
	id      int
	members []*types.Const // declaration order
}

// constGroups maps every package-level constant object to its
// declaration group, so string-keyed enums (no named type) can be
// reconstructed.
func (p *Pass) constGroups() map[types.Object]*constGroup {
	byObj := make(map[types.Object]*constGroup)
	id := 0
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			group := &constGroup{id: id}
			id++
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if c, ok := p.Info.Defs[name].(*types.Const); ok && name.Name != "_" {
						group.members = append(group.members, c)
						byObj[c] = group
					}
				}
			}
		}
	}
	return byObj
}

// checkEnumSwitch resolves the switch's case constants, derives the
// enum family, and reports partial coverage without a default.
func (p *Pass) checkEnumSwitch(sw *ast.SwitchStmt, groups map[types.Object]*constGroup) {
	var caseConsts []*types.Const
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if c := p.constOf(e); c != nil {
				caseConsts = append(caseConsts, c)
			}
		}
	}
	if len(caseConsts) == 0 {
		return // literal or non-constant cases: not an enum dispatch
	}

	family, enumName := p.enumFamily(sw.Tag, caseConsts, groups)
	if len(family) < 2 {
		return // a single constant is a sentinel, not an enum
	}

	covered := make(map[types.Object]bool, len(caseConsts))
	for _, c := range caseConsts {
		covered[c] = true
	}
	var missing []string
	for _, m := range family {
		if !covered[m] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)

	if defaultClause == nil {
		p.Reportf(sw.Pos(), "exhaustiveenvelope",
			"switch on %s covers %d of %d values (missing %s) and has no default; add the cases or a default that rejects unknown values, or mark a deliberate filter with %s exhaustiveenvelope <reason>",
			enumName, len(family)-len(missing), len(family), strings.Join(missing, ", "), allowPrefix)
		return
	}
	if len(defaultClause.Body) == 0 {
		p.Reportf(defaultClause.Pos(), "exhaustiveenvelope",
			"empty default on a partial switch over %s (missing %s) silently drops unknown values; reject them (ErrProtocol) or handle them explicitly",
			enumName, strings.Join(missing, ", "))
	}
}

// constOf resolves a case expression to a declared constant object:
// a bare identifier or a pkg-qualified selector. Literals return nil.
func (p *Pass) constOf(e ast.Expr) *types.Const {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := p.Info.Uses[x].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := p.Info.Uses[x.Sel].(*types.Const)
		return c
	}
	return nil
}

// enumFamily derives the full constant family the switch dispatches
// over, plus a printable enum name for the diagnostic.
func (p *Pass) enumFamily(tag ast.Expr, caseConsts []*types.Const, groups map[types.Object]*constGroup) ([]*types.Const, string) {
	// Shape 1: named defined type with basic underlying — collect every
	// package-scope constant of exactly that type from its home package.
	if named, ok := p.typeOf(tag).(*types.Named); ok {
		if _, basic := named.Underlying().(*types.Basic); basic && named.Obj().Pkg() != nil {
			scope := named.Obj().Pkg().Scope()
			var family []*types.Const
			names := scope.Names() // already sorted
			for _, name := range names {
				if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
					family = append(family, c)
				}
			}
			return family, named.Obj().Name()
		}
		return nil, ""
	}
	// Shape 2: basic-typed tag — the family is the const group shared by
	// ALL resolved case constants (a group is one `const (...)` block in
	// this package).
	group := groups[caseConsts[0]]
	if group == nil {
		return nil, ""
	}
	for _, c := range caseConsts[1:] {
		if groups[c] != group {
			return nil, "" // mixed origins: not one enum
		}
	}
	return group.members, "the " + group.members[0].Name() + " const group"
}
