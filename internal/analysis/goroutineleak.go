package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineLeakAnalyzer flags `go` statements that launch a goroutine
// with no termination path: a function whose body contains an
// unconditional `for` loop from which no statement can ever exit — no
// return, no break targeting the loop, no goto, no panic/os.Exit. Such
// a goroutine outlives the work that spawned it; in a campaign process
// thousands of leaked pumps accumulate until the scheduler (and the
// race detector) drown. Loops that select on a quit channel or
// ctx.Done() exit through the `return` in that case and are clean; a
// deliberately process-lifetime goroutine carries a
// //lint:allow goroutineleak annotation saying who owns its shutdown.
//
// The check resolves `go f()` and `go s.method()` to same-package
// function declarations (via go/types) as well as inline closures;
// cross-package launches are out of scope for a per-package pass.
var GoroutineLeakAnalyzer = &Analyzer{
	Name: "goroutineleak",
	Doc:  "forbid goroutines whose body loops forever with no return/break/quit-channel exit",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) {
	decls := pass.funcDecls()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := pass.goBody(gs, decls)
			if body == nil {
				return true
			}
			if loop := findInescapableLoop(body); loop != nil {
				pass.Reportf(gs.Pos(), "goroutineleak",
					"goroutine has no termination path: the loop at %s can never exit; select on a quit channel or ctx.Done() and return, or annotate a process-lifetime goroutine with %s goroutineleak <reason>",
					pass.Fset.Position(loop.Pos()), allowPrefix)
			}
			return true
		})
	}
}

// funcDecls indexes the package's function declarations by their
// types.Func object, so `go f()` can be traced to f's body.
func (p *Pass) funcDecls() map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	if p.Info == nil {
		return decls
	}
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// goBody resolves the body of the function a go statement launches:
// an inline closure directly, or a same-package declaration through the
// type checker. nil when the callee is out of reach (another package, a
// function value).
func (p *Pass) goBody(gs *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if p.Info != nil {
			if obj, ok := p.Info.Uses[fun]; ok {
				if fd := decls[obj]; fd != nil {
					return fd.Body
				}
			}
		}
	case *ast.SelectorExpr:
		if p.Info != nil {
			if obj, ok := p.Info.Uses[fun.Sel]; ok {
				if fd := decls[obj]; fd != nil {
					return fd.Body
				}
			}
		}
	}
	return nil
}

// findInescapableLoop returns the first unconditional for loop in body
// (not inside a nested function literal) that no statement can exit, or
// nil when every loop terminates or can be escaped.
func findInescapableLoop(body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // runs on its own goroutine/time; not this body
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !loopCanExit(loop) {
			found = loop
			return false
		}
		return true
	})
	return found
}

// loopCanExit reports whether an unconditional `for { }` loop has any
// escape: a return, a goto, a panic/os.Exit-style call, or a break that
// targets this loop (an unlabeled break inside a nested for, select,
// switch, or type switch targets the inner statement and does NOT
// escape — the `for { select { case <-ch: break } }` trap).
func loopCanExit(loop *ast.ForStmt) bool {
	var label string
	// A labeled loop can be exited from nested statements via its label.
	// The parent walk does not hand us the label, so accept any labeled
	// break/continue naming an enclosing statement as an escape — the
	// label must refer to an enclosing loop for the program to compile,
	// and escaping to ANY enclosing loop leaves this one.
	_ = label
	exits := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakTargetsLoop bool) {
		if n == nil || exits {
			return
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return // separate body
		case *ast.ReturnStmt:
			exits = true
			return
		case *ast.BranchStmt:
			switch {
			case s.Label != nil:
				// Labeled break/continue/goto: targets an enclosing
				// statement, so control leaves this loop body.
				exits = true
			case s.Tok.String() == "break" && breakTargetsLoop:
				exits = true
			case s.Tok.String() == "goto":
				exits = true
			}
			return
		case *ast.CallExpr:
			if isTerminalCall(s) {
				exits = true
				return
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			// Unlabeled break inside these targets them, not our loop.
			for _, child := range childStatements(n) {
				walk(child, false)
			}
			return
		}
		// Generic descent preserving the break context.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n || exits {
				return c == n
			}
			walk(c, breakTargetsLoop)
			return false
		})
	}
	for _, stmt := range loop.Body.List {
		walk(stmt, true)
		if exits {
			return true
		}
	}
	return false
}

// childStatements returns the statement children of a nested breakable
// construct, so the walk can descend with break-targeting disabled.
func childStatements(n ast.Node) []ast.Stmt {
	switch s := n.(type) {
	case *ast.ForStmt:
		return s.Body.List
	case *ast.RangeStmt:
		return s.Body.List
	case *ast.SelectStmt:
		return s.Body.List
	case *ast.SwitchStmt:
		return s.Body.List
	case *ast.TypeSwitchStmt:
		return s.Body.List
	default:
		return nil
	}
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		name := fun.Sel.Name
		switch pkg.Name {
		case "os":
			return name == "Exit"
		case "log":
			return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
		case "runtime":
			return name == "Goexit"
		}
	}
	return false
}
