package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the suppression marker. Like //go:build directives it
// must start flush against the comment slashes: "// lint:allow" is prose,
// not a directive.
const allowPrefix = "//lint:allow"

// Allow is one parsed suppression: which rules to silence and why. The
// reason is mandatory — a suppression without a recorded justification
// is exactly the tribal knowledge this linter exists to eliminate. One
// directive may name several comma-separated rules
// (`//lint:allow wallclock,globalrand reason`) when a single site
// legitimately trips more than one analyzer.
type Allow struct {
	Rules  []string
	Reason string
}

// ParseAllow parses a raw comment (including the leading "//"). The
// second result reports whether the comment is a lint:allow directive at
// all; when it is, a non-nil error means the directive is malformed
// (missing rule, unknown rule, empty list element, or missing reason)
// and must be reported.
func ParseAllow(text string, known map[string]bool) (Allow, bool, error) {
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok {
		return Allow{}, false, nil
	}
	// "//lint:allowance" is not a directive; "//lint:allow<space>..." is.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return Allow{}, false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Allow{}, true, fmt.Errorf("missing rule name (want %q)", allowPrefix+" <rule>[,<rule>...] <reason>")
	}
	rules := strings.Split(fields[0], ",")
	for _, rule := range rules {
		if rule == "" {
			return Allow{}, true, fmt.Errorf("empty rule name in list %q (a trailing or doubled comma, or a space after a comma)", fields[0])
		}
		if !known[rule] {
			return Allow{}, true, fmt.Errorf("unknown rule %q", rule)
		}
	}
	reason := strings.Join(fields[1:], " ")
	if reason == "" {
		return Allow{}, true, fmt.Errorf("rule %s: missing reason — say why the violation is safe", fields[0])
	}
	return Allow{Rules: rules, Reason: reason}, true, nil
}

// suppression is an Allow resolved to a file-line range.
type suppression struct {
	rule      string
	startLine int
	endLine   int
}

// suppressionSet indexes suppressions by filename.
type suppressionSet map[string][]suppression

func (s suppressionSet) covers(d Diagnostic) bool {
	for _, sup := range s[d.Pos.Filename] {
		if sup.rule == d.Rule && d.Pos.Line >= sup.startLine && d.Pos.Line <= sup.endLine {
			return true
		}
	}
	return false
}

// collectSuppressions scans every comment in files. Well-formed allows
// become range suppressions: a comment inside (or trailing) a statement
// line covers that line and the next, and a comment in a function's doc
// group covers the whole declaration. Malformed allows are returned as
// "lint" diagnostics — an unreadable suppression must fail the build,
// not silently suppress nothing.
func collectSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) (suppressionSet, []Diagnostic) {
	set := make(suppressionSet)
	var diags []Diagnostic
	for _, file := range files {
		docOwner := docComments(file)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				allow, matched, err := ParseAllow(c.Text, known)
				if !matched {
					continue
				}
				pos := fset.Position(c.Pos())
				if err != nil {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Rule:    "lint",
						Message: "malformed " + allowPrefix + ": " + err.Error(),
					})
					continue
				}
				endLine := pos.Line + 1
				if decl, ok := docOwner[c]; ok {
					endLine = fset.Position(decl.End()).Line
				}
				for _, rule := range allow.Rules {
					set[pos.Filename] = append(set[pos.Filename], suppression{
						rule: rule, startLine: pos.Line, endLine: endLine,
					})
				}
			}
		}
	}
	return set, diags
}

// docComments maps each comment that is part of a function's doc group
// to the owning declaration.
func docComments(file *ast.File) map[*ast.Comment]*ast.FuncDecl {
	owner := make(map[*ast.Comment]*ast.FuncDecl)
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			owner[c] = fd
		}
	}
	return owner
}
