package analysis

import (
	"strings"
	"testing"
)

// FuzzParseAllow asserts the suppression-comment parser never panics
// and holds its invariants on arbitrary input. The parser runs over
// every comment in the repository on every `make lint`, so a crash or a
// misparse here would take down tier-1 verification.
func FuzzParseAllow(f *testing.F) {
	f.Add("//lint:allow wallclock measuring bench cost, not sim time")
	f.Add("//lint:allow floateq")
	f.Add("//lint:allow")
	f.Add("//lint:allow unknown reason text")
	f.Add("// lint:allow wallclock spaced")
	f.Add("//lint:allowance prose")
	f.Add("//lint:allow\twallclock\ttabbed reason")
	f.Add("//lint:allow wallclock \x00 binary reason")
	f.Add("")

	known := RuleNames()
	f.Fuzz(func(t *testing.T, text string) {
		allow, matched, err := ParseAllow(text, known)
		if !matched {
			// Non-directives never carry an error or a payload.
			if err != nil {
				t.Fatalf("unmatched comment returned error: %v", err)
			}
			if allow != (Allow{}) {
				t.Fatalf("unmatched comment returned payload: %+v", allow)
			}
			if strings.HasPrefix(text, allowPrefix+" ") {
				t.Fatalf("directive-shaped comment %q not matched", text)
			}
			return
		}
		if !strings.HasPrefix(text, allowPrefix) {
			t.Fatalf("matched %q without directive prefix", text)
		}
		if err != nil {
			return
		}
		// A successful parse yields a known rule and a normalized,
		// non-empty reason…
		if !known[allow.Rule] {
			t.Fatalf("parsed unknown rule %q from %q", allow.Rule, text)
		}
		if allow.Reason == "" || allow.Reason != strings.Join(strings.Fields(allow.Reason), " ") {
			t.Fatalf("reason %q not normalized (from %q)", allow.Reason, text)
		}
		// …and reconstructing the directive round-trips exactly.
		re, matched2, err2 := ParseAllow(allowPrefix+" "+allow.Rule+" "+allow.Reason, known)
		if !matched2 || err2 != nil || re != allow {
			t.Fatalf("round-trip of %+v gave %+v (matched=%v err=%v)", allow, re, matched2, err2)
		}
	})
}
