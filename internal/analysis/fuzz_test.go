package analysis

import (
	"slices"
	"strings"
	"testing"
)

// FuzzParseAllow asserts the suppression-comment parser never panics
// and holds its invariants on arbitrary input. The parser runs over
// every comment in the repository on every `make lint`, so a crash or a
// misparse here would take down tier-1 verification.
func FuzzParseAllow(f *testing.F) {
	f.Add("//lint:allow wallclock measuring bench cost, not sim time")
	f.Add("//lint:allow floateq")
	f.Add("//lint:allow")
	f.Add("//lint:allow unknown reason text")
	f.Add("// lint:allow wallclock spaced")
	f.Add("//lint:allowance prose")
	f.Add("//lint:allow\twallclock\ttabbed reason")
	f.Add("//lint:allow wallclock \x00 binary reason")
	f.Add("//lint:allow wallclock,globalrand one site trips both rules")
	f.Add("//lint:allow wallclock,globalrand,floateq demo loop")
	f.Add("//lint:allow wallclock, space after comma")
	f.Add("//lint:allow wallclock,,globalrand doubled comma")
	f.Add("//lint:allow ,wallclock leading comma")
	f.Add("")

	known := RuleNames()
	f.Fuzz(func(t *testing.T, text string) {
		allow, matched, err := ParseAllow(text, known)
		if !matched {
			// Non-directives never carry an error or a payload.
			if err != nil {
				t.Fatalf("unmatched comment returned error: %v", err)
			}
			if allow.Rules != nil || allow.Reason != "" {
				t.Fatalf("unmatched comment returned payload: %+v", allow)
			}
			if strings.HasPrefix(text, allowPrefix+" ") {
				t.Fatalf("directive-shaped comment %q not matched", text)
			}
			return
		}
		if !strings.HasPrefix(text, allowPrefix) {
			t.Fatalf("matched %q without directive prefix", text)
		}
		if err != nil {
			return
		}
		// A successful parse yields known rules and a normalized,
		// non-empty reason…
		if len(allow.Rules) == 0 {
			t.Fatalf("parsed zero rules without error from %q", text)
		}
		for _, rule := range allow.Rules {
			if !known[rule] {
				t.Fatalf("parsed unknown rule %q from %q", rule, text)
			}
		}
		if allow.Reason == "" || allow.Reason != strings.Join(strings.Fields(allow.Reason), " ") {
			t.Fatalf("reason %q not normalized (from %q)", allow.Reason, text)
		}
		// …and reconstructing the directive round-trips exactly.
		re, matched2, err2 := ParseAllow(allowPrefix+" "+strings.Join(allow.Rules, ",")+" "+allow.Reason, known)
		if !matched2 || err2 != nil || !slices.Equal(re.Rules, allow.Rules) || re.Reason != allow.Reason {
			t.Fatalf("round-trip of %+v gave %+v (matched=%v err=%v)", allow, re, matched2, err2)
		}
	})
}
