package validity

import (
	"fmt"
	"os"
	"testing"
	"time"

	"teledrive/internal/driver"
)

func TestSweepSmoke(t *testing.T) {
	if os.Getenv("TELEDRIVE_CALIB") == "" {
		t.Skip("calibration harness")
	}
	prof, _ := driver.SubjectByName("T5")
	for _, env := range []Env{Simulator(prof), ModelVehicle()} {
		delays := PaperDelays()
		if env.Name == "model-vehicle" {
			delays = ModelDelays()
		}
		pts, err := Sweep(env, delays, PaperLosses(), 2024)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			fmt.Printf("%-14s %-12s grade=%-10s done=%v col=%d dep=%d srr=%5.1f v=%4.1f lat=%.3f\n",
				p.Env, p.Label, p.Grade, p.Completed, p.Collisions, p.LaneDepartures, p.SRR, p.MeanSpeed, p.MeanAbsLateral)
		}
	}
	_ = time.Second
}
