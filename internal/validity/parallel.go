// Parallel sweep execution. The §VIII sweeps follow the same
// plan/execute split as the campaign runner: each sweep enumerates its
// measurement points up front (every point carries an explicit seed),
// runs them on a bounded worker pool, and applies classification and
// the monotone-grade pass sequentially afterwards — so sweep results
// are bit-identical for any worker count.
package validity

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"teledrive/internal/netem"
	"teledrive/internal/telemetry"
)

// PointCounters binds (or re-opens — binding is idempotent) the sweep
// progress counters for one environment: points planned and points
// done. A progress display binds the same handles the pool increments.
func PointCounters(reg *telemetry.Registry, envName string) (planned, done *telemetry.Counter) {
	points := reg.CounterVec("teledrive_sweep_points_total",
		"Validity-sweep measurement points by lifecycle event (planned/done).", "env", "event")
	return points.With(envName, "planned"), points.With(envName, "done")
}

// pointJob is one planned sweep measurement.
type pointJob struct {
	rule  netem.Rule
	label string
	// desc is the error context ("baseline", "delay 100ms", ...),
	// matching the legacy sequential error messages.
	desc string
	seed int64
}

// runPoints executes the planned jobs on a bounded pool and returns
// the points in job order. The first failure (in job order) cancels
// outstanding work and is returned.
func runPoints(env Env, jobs []pointJob, workers int) ([]Point, error) {
	pts := make([]Point, len(jobs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Sweep progress instruments (pre-bound; nil handles when the env is
	// uninstrumented). The environment label keeps concurrent simulator
	// and model-vehicle sweeps distinguishable on one registry.
	var planned, done *telemetry.Counter
	if env.Metrics != nil {
		planned, done = PointCounters(env.Metrics, env.Name)
		planned.Add(uint64(len(jobs)))
	}

	if workers <= 1 {
		for i, j := range jobs {
			p, err := RunPoint(env, j.rule, j.label, j.seed)
			if err != nil {
				return nil, fmt.Errorf("validity: %s %s: %w", env.Name, j.desc, err)
			}
			pts[i] = p
			if done != nil {
				done.Inc()
			}
		}
		return pts, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queue := make(chan int)
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				if ctx.Err() != nil {
					continue
				}
				p, err := RunPoint(env, jobs[i].rule, jobs[i].label, jobs[i].seed)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				pts[i] = p
				if done != nil {
					done.Inc()
				}
			}
		}()
	}
	for i := range jobs {
		queue <- i
	}
	close(queue)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("validity: %s %s: %w", env.Name, jobs[i].desc, err)
		}
	}
	return pts, nil
}

// SweepWorkers is Sweep with a bounded worker pool: all points
// (baseline included) are simulated concurrently, then classified and
// monotone-adjusted sequentially. Results are bit-identical to
// Sweep's for every workers value.
func SweepWorkers(env Env, delays []time.Duration, losses []float64, seed int64, workers int) ([]Point, error) {
	jobs := []pointJob{{rule: netem.Rule{}, label: "none", desc: "baseline", seed: seed}}
	for i, d := range delays {
		jobs = append(jobs, pointJob{
			rule: netem.Rule{Delay: d}, label: fmt.Sprintf("delay %v", d),
			desc: fmt.Sprintf("delay %v", d), seed: seed + int64(i) + 1,
		})
	}
	for i, l := range losses {
		jobs = append(jobs, pointJob{
			rule: netem.Rule{Loss: l}, label: fmt.Sprintf("loss %.0f%%", l*100),
			desc: fmt.Sprintf("loss %v", l), seed: seed + 100 + int64(i),
		})
	}
	pts, err := runPoints(env, jobs, workers)
	if err != nil {
		return nil, err
	}
	pts[0].Grade = DrivOK
	baseline := pts[0]
	// Grades within one fault family are monotone non-decreasing in
	// magnitude (see Sweep).
	grade := func(from, to int) {
		worst := DrivOK
		for k := from; k < to; k++ {
			pts[k].Grade = Classify(pts[k], baseline)
			if pts[k].Grade < worst {
				pts[k].Grade = worst
			}
			worst = pts[k].Grade
		}
	}
	grade(1, 1+len(delays))
	grade(1+len(delays), len(pts))
	return pts, nil
}

// GridSweepWorkers is GridSweep with a bounded worker pool; like
// SweepWorkers, simulation is concurrent and grading sequential.
func GridSweepWorkers(env Env, delays []time.Duration, losses []float64, seed int64, workers int) ([]GridPoint, error) {
	jobs := []pointJob{{rule: netem.Rule{}, label: "none", desc: "grid baseline", seed: seed}}
	type cellRef struct {
		di, li, job int
	}
	var refs []cellRef
	for di, d := range delays {
		for li, l := range losses {
			if d == 0 && l == 0 { //lint:allow floateq the baseline cell is the literal zero from the sweep spec, not a computed value
				refs = append(refs, cellRef{di, li, 0})
				continue
			}
			label := fmt.Sprintf("delay %v + loss %.0f%%", d, l*100)
			refs = append(refs, cellRef{di, li, len(jobs)})
			jobs = append(jobs, pointJob{
				rule: netem.Rule{Delay: d, Loss: l}, label: label, desc: label,
				seed: seed + int64(di*100+li) + 1,
			})
		}
	}
	pts, err := runPoints(env, jobs, workers)
	if err != nil {
		return nil, err
	}
	pts[0].Grade = DrivOK
	baseline := pts[0]

	grades := make(map[[2]int]Drivability)
	out := make([]GridPoint, 0, len(refs))
	for _, ref := range refs {
		p := pts[ref.job]
		if ref.job != 0 {
			p.Grade = Classify(p, baseline)
		}
		// Monotonicity against the left and upper neighbours.
		if ref.di > 0 {
			if g := grades[[2]int{ref.di - 1, ref.li}]; p.Grade < g {
				p.Grade = g
			}
		}
		if ref.li > 0 {
			if g := grades[[2]int{ref.di, ref.li - 1}]; p.Grade < g {
				p.Grade = g
			}
		}
		grades[[2]int{ref.di, ref.li}] = p.Grade
		out = append(out, GridPoint{Delay: delays[ref.di], Loss: losses[ref.li], Point: p})
	}
	return out, nil
}
