package validity

import (
	"testing"
	"time"

	"teledrive/internal/driver"
	"teledrive/internal/netem"
)

func TestDrivabilityString(t *testing.T) {
	names := map[Drivability]string{
		DrivOK: "ok", DrivDegraded: "degraded",
		DrivDifficult: "difficult", DrivImpossible: "impossible",
	}
	for d, want := range names {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q", d, got)
		}
	}
	if Drivability(42).String() == "" {
		t.Fatal("unknown grade should render")
	}
}

func TestClassify(t *testing.T) {
	base := Point{Completed: true, SRR: 5, MeanSpeed: 9, MeanAbsLateral: 0.02}
	cases := []struct {
		name string
		p    Point
		want Drivability
	}{
		{"clean", Point{Completed: true, SRR: 5, MeanSpeed: 9, MeanAbsLateral: 0.02}, DrivOK},
		{"timeout", Point{Completed: false}, DrivImpossible},
		{"many crashes", Point{Completed: true, Collisions: 2}, DrivImpossible},
		{"one crash", Point{Completed: true, Collisions: 1, MeanSpeed: 9}, DrivDifficult},
		{"SRR tripled", Point{Completed: true, SRR: 25, MeanSpeed: 9, MeanAbsLateral: 0.02}, DrivDifficult},
		{"crawling", Point{Completed: true, SRR: 5, MeanSpeed: 4, MeanAbsLateral: 0.02}, DrivDifficult},
		{"SRR elevated", Point{Completed: true, SRR: 11, MeanSpeed: 9, MeanAbsLateral: 0.02}, DrivDegraded},
		{"wandering", Point{Completed: true, SRR: 5, MeanSpeed: 9, MeanAbsLateral: 0.12}, DrivDegraded},
		{"slowed", Point{Completed: true, SRR: 5, MeanSpeed: 7, MeanAbsLateral: 0.02}, DrivDegraded},
		{"departures", Point{Completed: true, SRR: 5, MeanSpeed: 9, MeanAbsLateral: 0.02, LaneDepartures: 1}, DrivDegraded},
	}
	for _, c := range cases {
		if got := Classify(c.p, base); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestGradesMonotonicOrder(t *testing.T) {
	if !(DrivOK < DrivDegraded && DrivDegraded < DrivDifficult && DrivDifficult < DrivImpossible) {
		t.Fatal("grade ordering broken")
	}
}

func TestEnvironments(t *testing.T) {
	prof, _ := driver.SubjectByName("T5")
	sim := Simulator(prof)
	if sim.Name != "simulator" || !sim.Transport.Reliable {
		t.Fatalf("simulator env: %+v", sim)
	}
	mv := ModelVehicle()
	if mv.Name != "model-vehicle" || mv.Transport.Reliable {
		t.Fatalf("model-vehicle env must use the datagram link: %+v", mv)
	}
	if mv.DriverConfig == nil || mv.DriverConfig.Wheelbase >= 1 {
		t.Fatalf("model-vehicle driver config not scaled: %+v", mv.DriverConfig)
	}
}

func TestPaperMagnitudes(t *testing.T) {
	if len(PaperDelays()) != 5 || PaperDelays()[4] != 200*time.Millisecond {
		t.Fatalf("delays = %v", PaperDelays())
	}
	if len(PaperLosses()) != 5 || PaperLosses()[4] != 0.10 {
		t.Fatalf("losses = %v", PaperLosses())
	}
	if len(ModelDelays()) != 4 || ModelDelays()[1] != 20*time.Millisecond {
		t.Fatalf("model delays = %v", ModelDelays())
	}
}

func TestRunPointBaseline(t *testing.T) {
	prof, _ := driver.SubjectByName("T5")
	p, err := RunPoint(Simulator(prof), netem.Rule{}, "none", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Completed || p.Collisions != 0 {
		t.Fatalf("baseline not clean: %+v", p)
	}
	if p.MeanSpeed < 5 || p.SRR < 0 {
		t.Fatalf("baseline stats: %+v", p)
	}
}

func TestModelVehicleBaseline(t *testing.T) {
	p, err := RunPoint(ModelVehicle(), netem.Rule{}, "none", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Completed {
		t.Fatalf("model-vehicle baseline did not complete: %+v", p)
	}
	if p.MeanSpeed < 1 || p.MeanSpeed > 4 {
		t.Fatalf("model-vehicle speed %v outside RC-car range", p.MeanSpeed)
	}
	if p.MeanAbsLateral > 0.1 {
		t.Fatalf("model-vehicle baseline wanders: %v", p.MeanAbsLateral)
	}
}

func TestSweepShape(t *testing.T) {
	// The headline §VIII claim: the model vehicle degrades at a lower
	// delay than the simulator. Compare the grade at 100 ms.
	prof, _ := driver.SubjectByName("T5")
	simPts, err := Sweep(Simulator(prof), []time.Duration{100 * time.Millisecond}, nil, 17)
	if err != nil {
		t.Fatal(err)
	}
	mvPts, err := Sweep(ModelVehicle(), []time.Duration{100 * time.Millisecond}, nil, 17)
	if err != nil {
		t.Fatal(err)
	}
	simGrade := simPts[1].Grade
	mvGrade := mvPts[1].Grade
	if mvGrade < simGrade {
		t.Fatalf("model vehicle at 100ms (%v) should be at least as degraded as the simulator (%v)", mvGrade, simGrade)
	}
}

func TestGridSweepMonotoneAndComplete(t *testing.T) {
	prof, _ := driver.SubjectByName("T5")
	delays := []time.Duration{0, 50 * time.Millisecond, 150 * time.Millisecond}
	losses := []float64{0, 0.05}
	grid, err := GridSweep(Simulator(prof), delays, losses, 321)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(delays)*len(losses) {
		t.Fatalf("grid cells = %d", len(grid))
	}
	find := func(d time.Duration, l float64) GridPoint {
		for _, g := range grid {
			if g.Delay == d && g.Loss == l {
				return g
			}
		}
		t.Fatalf("cell %v/%v missing", d, l)
		return GridPoint{}
	}
	// The zero cell is the OK baseline.
	if g := find(0, 0); g.Point.Grade != DrivOK {
		t.Fatalf("baseline grade = %v", g.Point.Grade)
	}
	// Monotone along the delay axis at fixed loss.
	for _, l := range losses {
		prev := DrivOK
		for _, d := range delays {
			g := find(d, l).Point.Grade
			if g < prev {
				t.Fatalf("grade decreased along delay axis at %v/%v", d, l)
			}
			prev = g
		}
	}
	// A combination is at least as bad as its components.
	combo := find(150*time.Millisecond, 0.05).Point.Grade
	if combo < find(150*time.Millisecond, 0).Point.Grade || combo < find(0, 0.05).Point.Grade {
		t.Fatal("combined fault milder than a component")
	}
}

func TestSweepBothAxesAndMonotone(t *testing.T) {
	env := ModelVehicle()
	pts, err := Sweep(env,
		[]time.Duration{10 * time.Millisecond, 80 * time.Millisecond},
		[]float64{0.02, 0.08}, 55)
	if err != nil {
		t.Fatal(err)
	}
	// baseline + 2 delays + 2 losses.
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Label != "none" || pts[0].Grade != DrivOK {
		t.Fatalf("baseline = %+v", pts[0])
	}
	// Monotone within each family.
	if pts[2].Grade < pts[1].Grade {
		t.Fatalf("delay grades not monotone: %v then %v", pts[1].Grade, pts[2].Grade)
	}
	if pts[4].Grade < pts[3].Grade {
		t.Fatalf("loss grades not monotone: %v then %v", pts[3].Grade, pts[4].Grade)
	}
	// The Point reports the injected magnitudes, not base-stacked ones.
	if pts[1].Rule.Delay != 10*time.Millisecond {
		t.Fatalf("injected delay misreported: %v", pts[1].Rule.Delay)
	}
	for _, p := range pts {
		if p.LaneWidth <= 0 {
			t.Fatalf("lane width missing: %+v", p)
		}
	}
}
