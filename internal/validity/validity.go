// Package validity implements the paper's §VIII validity comparison:
// sweeping network-fault magnitudes (delay and packet loss) on both the
// driving simulator and the remotely-operated model vehicle, and
// classifying each point's drivability against the environment's
// fault-free baseline.
//
// Paper findings to reproduce in shape: the simulator degrades at
// >100 ms delay and is unresponsive at >200 ms; 1 % loss has no
// significant effect while 10 % makes driving very difficult. The model
// vehicle degrades already at >20 ms delay and is impossible at
// >100 ms; 7 % loss has a conscious impact and 10 % is impossible.
package validity

import (
	"fmt"
	"time"

	"teledrive/internal/driver"
	"teledrive/internal/metrics"
	"teledrive/internal/modelvehicle"
	"teledrive/internal/netem"
	"teledrive/internal/rds"
	"teledrive/internal/scenario"
	"teledrive/internal/session"
	"teledrive/internal/telemetry"
	"teledrive/internal/transport"
)

// Drivability is the qualitative outcome of one sweep point.
type Drivability int

// Drivability grades, ordered from best to worst.
const (
	DrivOK Drivability = iota + 1
	DrivDegraded
	DrivDifficult
	DrivImpossible
)

// String renders the grade.
func (d Drivability) String() string {
	switch d {
	case DrivOK:
		return "ok"
	case DrivDegraded:
		return "degraded"
	case DrivDifficult:
		return "difficult"
	case DrivImpossible:
		return "impossible"
	default:
		return fmt.Sprintf("drivability(%d)", int(d))
	}
}

// Env describes one environment under test.
type Env struct {
	Name string
	// NewScenario builds a fresh scenario per run.
	NewScenario func() *scenario.Scenario
	Profile     driver.Profile
	// DriverConfig may be nil (sedan defaults).
	DriverConfig *driver.Config
	// Transport: the simulator uses the reliable TCP-like channel; the
	// model vehicle's smartphone link is datagram-style.
	Transport transport.Options
	// NewStack, when non-nil, selects the session stack builder (the
	// model vehicle substitutes its scale-model plant; nil means the
	// default simulator plant).
	NewStack session.StackBuilder
	// BaseDelay/BaseLoss are the environment's inherent link
	// impairments, present even at the "no fault" point. The paper's
	// model vehicle streams video through a smartphone camera over a
	// cellular link: its baseline latency is why an extra 20 ms already
	// degrades driving while the simulator shrugs off 50 ms.
	BaseDelay time.Duration
	BaseLoss  float64
	// Metrics, when non-nil, instruments every sweep run and the sweep
	// progress counters (see rds.BenchConfig.Metrics). Inert: sweep
	// results are bit-identical with or without it.
	Metrics *telemetry.Registry
}

// Simulator returns the CARLA-analogue environment driven by the given
// subject on the training-town course (free driving isolates the
// network effect from traffic randomness).
func Simulator(profile driver.Profile) Env {
	return Env{
		Name:        "simulator",
		NewScenario: scenario.Training,
		Profile:     profile,
		Transport:   transport.Options{Name: "sim", Reliable: true},
	}
}

// ModelVehicle returns the scale-model-car environment: the same driver
// model on the RC-car plant and indoor course, with a datagram
// (smartphone-camera style) video link.
func ModelVehicle() Env {
	cfg := modelvehicle.DriverConfig()
	return Env{
		Name:         "model-vehicle",
		NewScenario:  modelvehicle.Course,
		Profile:      modelvehicle.Operator(),
		DriverConfig: &cfg,
		Transport:    transport.Options{Name: "model", Reliable: false},
		NewStack:     modelvehicle.NewStack,
		BaseDelay:    120 * time.Millisecond,
		BaseLoss:     0.005,
	}
}

// Point is one sweep measurement.
type Point struct {
	Env   string
	Label string
	Rule  netem.Rule

	Completed      bool
	Collisions     int
	LaneDepartures int
	// FailedInjections counts fault injections the plant refused during
	// this point: the injected magnitude was never experienced, so the
	// measurement is an invalid test execution (cmd/sweep -strict fails
	// the sweep when any point reports one).
	FailedInjections int
	SRR              float64
	MeanSpeed        float64
	TaskDuration     time.Duration
	MeanAbsLateral   float64
	// LaneWidth scales the lateral-error thresholds (a 7 cm wander is
	// nothing on a 3.5 m lane and severe on a 0.6 m model track).
	LaneWidth float64

	Grade Drivability
}

// RunPoint executes one sweep point.
func RunPoint(env Env, rule netem.Rule, label string, seed int64) (Point, error) {
	scn := env.NewScenario()
	laneWidth := scn.LaneWidth
	topts := env.Transport
	// Stack the injected rule on the environment's inherent impairments;
	// the Point reports the *injected* magnitudes.
	injected := rule
	rule.Delay += env.BaseDelay
	if env.BaseLoss > rule.Loss {
		rule.Loss = env.BaseLoss
	}
	var ruleP *netem.Rule
	if rule != (netem.Rule{}) {
		ruleP = &rule
	}
	out, err := rds.Run(rds.BenchConfig{
		Scenario:        scn,
		Profile:         env.Profile,
		Seed:            seed,
		Transport:       &topts,
		NewStack:        env.NewStack,
		DriverConfig:    env.DriverConfig,
		PersistentRule:  ruleP,
		PersistentLabel: label,
		Metrics:         env.Metrics,
	})
	if err != nil {
		return Point{}, err
	}
	p := Point{
		Env:              env.Name,
		Label:            label,
		Rule:             injected,
		Completed:        out.Completed,
		Collisions:       out.EgoCollisions,
		FailedInjections: out.FailedInjections,
		TaskDuration:     out.Log.Duration(),
		LaneWidth:        laneWidth,
	}
	var steer []float64
	var absLat, speedSum float64
	for _, e := range out.Log.Ego {
		steer = append(steer, e.Steer)
		if e.Lateral < 0 {
			absLat -= e.Lateral
		} else {
			absLat += e.Lateral
		}
		speedSum += e.Speed
	}
	if n := len(out.Log.Ego); n > 0 {
		p.MeanAbsLateral = absLat / float64(n)
		p.MeanSpeed = speedSum / float64(n)
	}
	srrCfg := metrics.DefaultSRRConfig()
	if res, err := metrics.ComputeSRR(steer, srrCfg); err == nil {
		p.SRR = res.RatePerMin
	}
	for _, ev := range out.Log.LaneInvasions {
		if ev.Kind == "departed" {
			p.LaneDepartures++
		}
	}
	return p, nil
}

// Classify grades a point against the environment's fault-free
// baseline. Lateral thresholds scale with the lane width so the same
// rules grade both the full-size simulator and the scale model track.
func Classify(p, baseline Point) Drivability {
	lane := p.LaneWidth
	if lane <= 0 {
		lane = 3.5
	}
	switch {
	case !p.Completed || p.Collisions >= 2,
		p.MeanAbsLateral > 4*baseline.MeanAbsLateral+0.06*lane:
		return DrivImpossible
	case p.Collisions > 0,
		p.LaneDepartures > baseline.LaneDepartures+2,
		p.SRR > 2.5*baseline.SRR+4,
		p.MeanSpeed < 0.55*baseline.MeanSpeed,
		p.MeanAbsLateral > 2.5*baseline.MeanAbsLateral+0.03*lane:
		return DrivDifficult
	case p.LaneDepartures > baseline.LaneDepartures,
		p.SRR > 1.4*baseline.SRR+1.5,
		p.MeanAbsLateral > 1.5*baseline.MeanAbsLateral+0.008*lane,
		p.MeanSpeed < 0.85*baseline.MeanSpeed:
		return DrivDegraded
	default:
		return DrivOK
	}
}

// Sweep runs the full §VIII sweep for one environment: the fault-free
// baseline, then each delay and loss magnitude. Results carry grades.
// Grades within one fault family are monotone non-decreasing in
// magnitude: the sweep reports threshold claims ("above X ms the
// drive degrades"), so a higher magnitude is at least as bad as a
// lower one even when a single seeded run happens to grade milder.
// Sweep is the sequential (one-worker) form of SweepWorkers.
func Sweep(env Env, delays []time.Duration, losses []float64, seed int64) ([]Point, error) {
	return SweepWorkers(env, delays, losses, seed, 1)
}

// PaperDelays returns the delay magnitudes discussed in §VIII.
func PaperDelays() []time.Duration {
	return []time.Duration{
		5 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond,
	}
}

// PaperLosses returns the loss magnitudes discussed in §VIII.
func PaperLosses() []float64 { return []float64{0.01, 0.02, 0.05, 0.07, 0.10} }

// ModelDelays returns the delay set for the model vehicle (§VIII adds
// the 20 ms threshold).
func ModelDelays() []time.Duration {
	return []time.Duration{
		5 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond,
	}
}

// GridPoint is one cell of a combined delay×loss sweep.
type GridPoint struct {
	Delay time.Duration
	Loss  float64
	Point Point
}

// GridSweep evaluates every combination of the given delays and losses
// — the paper's future-work item "evaluate more combinations of fault
// models". The zero-fault cell is the baseline for classification, and
// grades are monotone along each row and column (a combination is at
// least as bad as either of its components alone). GridSweep is the
// sequential (one-worker) form of GridSweepWorkers.
func GridSweep(env Env, delays []time.Duration, losses []float64, seed int64) ([]GridPoint, error) {
	return GridSweepWorkers(env, delays, losses, seed, 1)
}
