package validity

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestSweepWorkersDeterminism: a sweep must produce bit-identical
// points (values and grades) for any worker count — every point
// carries an explicit seed, and grading is a sequential post-pass.
func TestSweepWorkersDeterminism(t *testing.T) {
	env := ModelVehicle()
	delays := []time.Duration{20 * time.Millisecond, 80 * time.Millisecond}
	losses := []float64{0.05}
	ref, err := SweepWorkers(env, delays, losses, 55, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 0} {
		pts, err := SweepWorkers(env, delays, losses, 55, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(pts, ref) {
			t.Fatalf("workers=%d: sweep points differ from sequential", w)
		}
	}
	// And the legacy entry point is the one-worker path.
	seq, err := Sweep(env, delays, losses, 55)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, ref) {
		t.Fatal("Sweep != SweepWorkers(..., 1)")
	}
}

// TestGridSweepWorkersDeterminism mirrors the ladder test for the
// delay×loss grid, including the baseline-reusing zero cell.
func TestGridSweepWorkersDeterminism(t *testing.T) {
	env := ModelVehicle()
	delays := []time.Duration{0, 40 * time.Millisecond}
	losses := []float64{0, 0.05}
	ref, err := GridSweepWorkers(env, delays, losses, 321, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(delays)*len(losses) {
		t.Fatalf("grid cells = %d", len(ref))
	}
	par, err := GridSweepWorkers(env, delays, losses, 321, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, ref) {
		t.Fatal("parallel grid differs from sequential")
	}
	seq, err := GridSweep(env, delays, losses, 321)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, ref) {
		t.Fatal("GridSweep != GridSweepWorkers(..., 1)")
	}
}

// TestRunPointsErrorPropagation drives the pool's failure path
// directly: an impossible netem rule is rejected by RunPoint and must
// surface with the job's description.
func TestRunPointsErrorPropagation(t *testing.T) {
	env := ModelVehicle()
	jobs := []pointJob{
		{label: "none", desc: "baseline", seed: 3},
		{label: "bogus", desc: "loss 12", seed: 4},
	}
	// Loss outside [0,1] makes netem's Apply fail inside the run.
	jobs[1].rule.Loss = 12
	for _, w := range []int{1, 4} {
		_, err := runPoints(env, jobs, w)
		if err == nil {
			t.Fatalf("workers=%d: invalid rule accepted", w)
		}
		if !strings.Contains(err.Error(), "loss 12") {
			t.Fatalf("workers=%d: unexpected error: %v", w, err)
		}
	}
}
