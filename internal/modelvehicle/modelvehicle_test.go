package modelvehicle

import (
	"testing"

	"teledrive/internal/vehicle"
)

func TestCourseValidates(t *testing.T) {
	scn := Course()
	if err := scn.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := scn.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The ego must be the scaled model car, not the sedan.
	if b.Ego.Extent.X > 1 {
		t.Fatalf("ego extent %v is not model-scale", b.Ego.Extent)
	}
	if b.Route.Length() < 40 {
		t.Fatalf("course length = %v, want a ≈50+ m loop", b.Route.Length())
	}
}

func TestCourseLaneIsNarrow(t *testing.T) {
	scn := Course()
	if scn.LaneWidth != CourseLaneWidth || scn.LaneWidth > 1 {
		t.Fatalf("lane width = %v", scn.LaneWidth)
	}
}

func TestOperatorProfileValid(t *testing.T) {
	if err := Operator().Validate(); err != nil {
		t.Fatal(err)
	}
	// Model-scale deadband: centimetres, not the sedan's decimetres.
	if Operator().LateralDeadband > 0.1 {
		t.Fatalf("deadband %v not model-scale", Operator().LateralDeadband)
	}
}

func TestDriverConfigValid(t *testing.T) {
	cfg := DriverConfig()
	// The task is filled in by the bench at run time; validate with the
	// course's task attached.
	b, err := Course().Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Task = b.Task
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	spec := vehicle.ScaledModelCar()
	if cfg.Wheelbase != spec.Wheelbase {
		t.Fatalf("wheelbase %v != plant %v", cfg.Wheelbase, spec.Wheelbase)
	}
	if cfg.LookaheadMax > 10 {
		t.Fatalf("lookahead max %v not model-scale", cfg.LookaheadMax)
	}
	if cfg.IDM.DesiredSpeed > spec.MaxSpeed {
		t.Fatalf("desired speed %v exceeds plant top speed", cfg.IDM.DesiredSpeed)
	}
}

func TestPlantSpec(t *testing.T) {
	spec := PlantSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.Length > 1 {
		t.Fatalf("plant length %v not a scale model", spec.Length)
	}
}

func TestCourseValidateFieldsMatchDriverTask(t *testing.T) {
	scn := Course()
	b, err := scn.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Task.LaneWidth != CourseLaneWidth {
		t.Fatalf("task lane width = %v", b.Task.LaneWidth)
	}
	if len(b.Task.SpeedPlan) == 0 || b.Task.SpeedPlan[0].Speed > 5 {
		t.Fatalf("speed plan = %+v", b.Task.SpeedPlan)
	}
}
