// Package modelvehicle implements the remotely-operated scale model
// vehicle used for the paper's §VIII validity comparison: a ~1:10 RC car
// driven around an indoor course over an unreliable (smartphone-camera
// style) video link. Its dynamics are much faster relative to its size
// than a real car's, which is why the paper found it degrades at far
// lower network-fault levels (>20 ms delay noticeable, >100 ms
// impossible; 7 % loss conscious impact, 10 % impossible).
package modelvehicle

import (
	"math"
	"time"

	"teledrive/internal/bridge"
	"teledrive/internal/driver"
	"teledrive/internal/geom"
	"teledrive/internal/scenario"
	"teledrive/internal/sensors"
	"teledrive/internal/session"
	"teledrive/internal/simclock"
	"teledrive/internal/transport"
	"teledrive/internal/vehicle"
	"teledrive/internal/world"
)

// CourseLaneWidth is the model course's taped lane width in metres.
const CourseLaneWidth = 0.6

// courseMap builds the indoor test course: a ≈70 m loop of straights
// and tight turns at model scale.
func courseMap() *world.RoadMap {
	ref := geom.NewPathBuilder(geom.Pose{}).
		Straight(15).
		Arc(3.5, math.Pi/2).
		Straight(8).
		Arc(3.5, math.Pi/2).
		Straight(15).
		Arc(3.5, math.Pi/2).
		Straight(8).
		Arc(3.5, math.Pi/2).
		MustBuild()
	return &world.RoadMap{
		Name:      "model-course",
		Reference: ref,
		Lanes: []*world.Lane{
			{ID: "track", Center: ref.Offset(0), Width: CourseLaneWidth},
		},
	}
}

// Course returns the model-vehicle driving scenario: two laps' worth of
// the course (single pass over the loop path), no traffic.
func Course() *scenario.Scenario {
	ref := courseMap().Reference
	spec := vehicle.ScaledModelCar()
	return &scenario.Scenario{
		Name:            "model-course",
		MapBuilder:      courseMap,
		RouteOffsets:    []world.OffsetSegment{{FromStation: 0, Offset: 0}},
		BlendLen:        2,
		LaneWidth:       CourseLaneWidth,
		EgoStartStation: 1,
		EgoSpec:         &spec,
		SpeedPlan: []driver.SpeedInstruction{
			{FromStation: 0, Speed: 3},
		},
		EndStation: ref.Length() - 2,
		Timeout:    3 * time.Minute,
		Weather:    "indoor",
	}
}

// Operator returns the driver profile for the model-vehicle experiments:
// the same human model, re-scaled to the small vehicle (short preview,
// tight deadband, fast wheel).
func Operator() driver.Profile {
	return driver.Profile{
		Name:            "model-op",
		Seed:            7777,
		ReactionTime:    260 * time.Millisecond,
		Anticipation:    0.3, // unfamiliar scaled dynamics defeat prediction
		SteerNoise:      0.004,
		NearGain:        0.5, // 1/m: centimetre errors matter at this scale
		LateralDeadband: 0.03,
		LookaheadTime:   0.45,
		Aggressiveness:  1.0,
		Caution:         0.5,
		WheelRate:       4.0,
	}
}

// DriverConfig returns the driver configuration scaled to the model car.
func DriverConfig() driver.Config {
	spec := vehicle.ScaledModelCar()
	return driver.Config{
		Profile: Operator(),
		IDM: driver.IDMParams{
			DesiredSpeed: 3.2,
			TimeHeadway:  1.0,
			MinGap:       0.3,
			MaxAccel:     1.8,
			ComfortBrake: 2.0,
			Exponent:     4,
		},
		Wheelbase:       spec.Wheelbase,
		MaxSteerAngle:   spec.MaxSteerAngle,
		PlantAccel:      spec.MaxAccel,
		PlantBrake:      spec.MaxBrake,
		EmergencyTTC:    1.2,
		LookaheadMin:    0.9,
		LookaheadMax:    4,
		LateralComfort:  3.0,
		NominalFrameAge: sensors.DefaultFrameInterval + 10*time.Millisecond,
	}
}

// PlantSpec returns the model car plant specification. The scenario
// builder spawns a sedan by default; model-vehicle runs replace the ego
// via BuildWithPlant.
func PlantSpec() vehicle.Spec { return vehicle.ScaledModelCar() }

// Plant is the scale-model vehicle subsystem: the paper's RC car with
// its smartphone-camera uplink. It speaks the same bridge protocol as
// the simulator plant — the session layer cannot tell them apart — and
// reports the model-scale frame geometry.
type Plant struct {
	*bridge.Server
}

// FrameGeometry describes the smartphone camera mounted on the car
// (the §VIII setup): its usable range at model scale.
func (p *Plant) FrameGeometry() (rangeM float64) { return p.Camera().Range }

// NewStack is the session.StackBuilder for the model-vehicle
// environment: the scale-model plant over the datagram
// (smartphone-camera style) link. Pass it via rds.BenchConfig.NewStack
// or validity.Env.NewStack.
func NewStack(clock *simclock.Clock, w *world.World, ego *world.Actor, seed int64, topts transport.Options) (*session.Stack, error) {
	sess, err := bridge.NewSessionWithTransport(clock, w, ego, seed, topts)
	if err != nil {
		return nil, err
	}
	return &session.Stack{
		Plant:  &Plant{Server: sess.Server},
		Client: sess.Client,
		Link:   session.NetemLink{Conn: sess.Conn},
	}, nil
}
