package transport

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecodeFrame asserts the frame decoder never panics on arbitrary
// input and that accepted frames re-encode to the same bytes.
func FuzzDecodeFrame(f *testing.F) {
	good, _ := EncodeFrame(Frame{Type: FrameData, Seq: 7, Timestamp: time.Second, Payload: []byte("seed")})
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	mut := make([]byte, len(good))
	copy(mut, good)
	mut[5] ^= 0x10
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		re, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzParseFragment asserts the fragment parser never panics and that
// the (msgID, idx, count) triple survives a re-fragmentation round trip
// for accepted single-fragment payloads.
func FuzzParseFragment(f *testing.F) {
	frags := (&Endpoint{}).fragmentize(42, []byte("hello fragment"))
	f.Add(frags[0])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{1}, fragHeaderLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		msgID, idx, count, chunk, ok := parseFragment(data)
		if !ok {
			return
		}
		if idx >= count {
			t.Fatalf("parser accepted idx %d ≥ count %d", idx, count)
		}
		if len(chunk) > len(data) {
			t.Fatal("chunk longer than input")
		}
		_ = msgID
	})
}
