package transport

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"teledrive/internal/netem"
	"teledrive/internal/simclock"
)

// TestReliableExactlyOnceProperty: under randomized network conditions
// the reliable channel delivers every message exactly once, in order,
// with no corruption — the TCP contract.
func TestReliableExactlyOnceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := simclock.New()
		var got []string
		conn := Connect(clk, seed, Options{Reliable: true},
			func([]byte, uint64, time.Duration) {},
			func(p []byte, _ uint64, _ time.Duration) { got = append(got, string(p)) },
		)
		rule := netem.Rule{
			Delay:   time.Duration(rng.Intn(60)) * time.Millisecond,
			Jitter:  time.Duration(rng.Intn(20)) * time.Millisecond,
			Loss:    rng.Float64() * 0.3,
			Corrupt: rng.Float64() * 0.1,
			Limit:   100000,
		}
		if err := conn.Links.Down.AddRule(rule); err != nil {
			return false
		}
		if rng.Intn(2) == 0 {
			conn.Links.Up.AddRule(netem.Rule{Loss: rng.Float64() * 0.2, Limit: 100000})
		}
		const n = 60
		sent := 0
		for i := 0; i < n; i++ {
			msg := fmt.Sprintf("msg-%04d", i)
			if err := conn.A.Send([]byte(msg)); err != nil {
				// Window full under heavy loss: wait and retry once.
				clk.Advance(500 * time.Millisecond)
				if err := conn.A.Send([]byte(msg)); err != nil {
					continue // give up on this message; do not count it
				}
			}
			sent++
			clk.Advance(time.Duration(10+rng.Intn(40)) * time.Millisecond)
		}
		clk.Advance(2 * time.Minute)
		if len(got) != sent {
			t.Logf("seed %d: delivered %d of %d", seed, len(got), sent)
			return false
		}
		// In-order (message numbers strictly increasing).
		last := -1
		for _, m := range got {
			var k int
			if _, err := fmt.Sscanf(m, "msg-%d", &k); err != nil {
				return false
			}
			if k <= last {
				return false
			}
			last = k
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestNetemConservationProperty: every packet is accounted for exactly
// once across delivered/lost/tail-dropped, minus what is still in
// flight.
func TestNetemConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := simclock.New()
		delivered := uint64(0)
		link := netem.NewLink("p", clk, seed, func(netem.Packet) { delivered++ })
		rule := netem.Rule{
			Delay:     time.Duration(rng.Intn(100)) * time.Millisecond,
			Jitter:    time.Duration(rng.Intn(30)) * time.Millisecond,
			Loss:      rng.Float64() * 0.5,
			Duplicate: rng.Float64() * 0.2,
			Limit:     1 + rng.Intn(200),
		}
		if err := link.AddRule(rule); err != nil {
			return false
		}
		n := 200 + rng.Intn(800)
		for i := 0; i < n; i++ {
			link.Send(make([]byte, 1+rng.Intn(100)))
			if rng.Intn(4) == 0 {
				clk.Advance(time.Duration(rng.Intn(10)) * time.Millisecond)
			}
		}
		clk.Advance(time.Minute)
		st := link.Stats()
		if link.InFlight() != 0 {
			return false
		}
		// Sent = delivered (minus duplicates) + lost + tail-dropped.
		return st.Sent == st.Delivered-st.Duplicated+st.Lost+st.TailDropped &&
			st.Delivered == delivered
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
