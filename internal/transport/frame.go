// Package transport implements the wire layer between the vehicle
// subsystem and the operator station: a binary frame codec with CRC-32
// integrity, plus a reliable in-order message channel (a miniature TCP)
// and an unreliable datagram mode, both running over netem links.
//
// The paper's CARLA deployment talks TCP over loopback; its observed
// packet-loss symptom — "certain frames being skipped" — is the
// head-of-line blocking stall of a reliable stream. Endpoint reproduces
// that: lost segments trigger an RTO, delivery halts until the
// retransmission lands, then buffered messages burst out.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// FrameType discriminates wire frames.
type FrameType uint8

const (
	// FrameData carries one application message with a sequence number.
	FrameData FrameType = iota + 1
	// FrameAck carries a cumulative acknowledgement.
	FrameAck
	// FrameDatagram carries an unacknowledged, unordered message.
	FrameDatagram
)

// String returns a short name for logs.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "DATA"
	case FrameAck:
		return "ACK"
	case FrameDatagram:
		return "DGRAM"
	default:
		return fmt.Sprintf("FRAME(%d)", uint8(t))
	}
}

// Frame is one unit on the wire.
type Frame struct {
	Type FrameType
	// Seq is the message sequence for FrameData/FrameDatagram, or the
	// cumulative acknowledged sequence for FrameAck.
	Seq uint64
	// Timestamp is the sender's simulated send time; receivers use it
	// for latency accounting.
	Timestamp time.Duration
	Payload   []byte
}

const (
	frameMagic    = 0x7D5A // arbitrary constant marking a teledrive frame
	headerLen     = 2 + 1 + 8 + 8 + 4
	trailerLen    = 4 // CRC-32 over header+payload
	frameOverhead = headerLen + trailerLen
	// MaxPayload bounds a frame payload; larger messages are a caller bug.
	MaxPayload = 1 << 20
)

// Codec errors. ErrCorruptFrame covers CRC mismatches and bad magic —
// receivers treat such frames exactly like lost packets.
var (
	ErrCorruptFrame  = errors.New("transport: corrupt frame")
	ErrShortFrame    = errors.New("transport: short frame")
	ErrPayloadTooBig = errors.New("transport: payload exceeds MaxPayload")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeFrame serializes f. The layout is
//
//	magic(2) type(1) seq(8) timestamp(8) payloadLen(4) payload CRC32C(4)
//
// with all integers big-endian.
func EncodeFrame(f Frame) ([]byte, error) {
	return EncodeFrameAppend(nil, f)
}

// EncodeFrameAppend serializes f appended to dst (usually dst[:0] of a
// reused scratch buffer) and returns the extended slice. It is the
// allocation-free form of EncodeFrame for hot paths whose consumer
// copies the wire bytes before the next encode — netem's Send clones
// every payload, so the endpoint reuses one scratch buffer for every
// frame it puts on a link.
func EncodeFrameAppend(dst []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayloadTooBig, len(f.Payload))
	}
	start := len(dst)
	need := headerLen + len(f.Payload) + trailerLen
	for cap(dst)-start < need {
		dst = append(dst[:cap(dst)], 0)
	}
	buf := dst[start : start+need]
	binary.BigEndian.PutUint16(buf[0:2], frameMagic)
	buf[2] = uint8(f.Type)
	binary.BigEndian.PutUint64(buf[3:11], f.Seq)
	binary.BigEndian.PutUint64(buf[11:19], uint64(f.Timestamp))
	binary.BigEndian.PutUint32(buf[19:23], uint32(len(f.Payload)))
	copy(buf[headerLen:], f.Payload)
	sum := crc32.Checksum(buf[:headerLen+len(f.Payload)], crcTable)
	binary.BigEndian.PutUint32(buf[headerLen+len(f.Payload):], sum)
	return dst[:start+need], nil
}

// DecodeFrame parses a wire buffer produced by EncodeFrame. The returned
// payload aliases buf.
func DecodeFrame(buf []byte) (Frame, error) {
	if len(buf) < frameOverhead {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrShortFrame, len(buf))
	}
	if binary.BigEndian.Uint16(buf[0:2]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic", ErrCorruptFrame)
	}
	plen := binary.BigEndian.Uint32(buf[19:23])
	if plen > MaxPayload || int(plen) != len(buf)-frameOverhead {
		return Frame{}, fmt.Errorf("%w: bad length %d for %d-byte frame", ErrCorruptFrame, plen, len(buf))
	}
	body := buf[:headerLen+int(plen)]
	want := binary.BigEndian.Uint32(buf[headerLen+int(plen):])
	if crc32.Checksum(body, crcTable) != want {
		return Frame{}, fmt.Errorf("%w: crc mismatch", ErrCorruptFrame)
	}
	return Frame{
		Type:      FrameType(buf[2]),
		Seq:       binary.BigEndian.Uint64(buf[3:11]),
		Timestamp: time.Duration(binary.BigEndian.Uint64(buf[11:19])),
		Payload:   buf[headerLen : headerLen+int(plen)],
	}, nil
}
