package transport

import "teledrive/internal/netem"

// fragBufCap is the capacity of a pooled fragment buffer: one MTU-sized
// chunk plus its fragment header. Every buffer the endpoint clones —
// outgoing fragments, held out-of-order frames, reassembly chunks — fits
// in one.
const fragBufCap = fragHeaderLen + MTU

// Pools is the shared buffer economy of one simulation's transport
// stack: outgoing fragment buffers and their segment records, reassembly
// state, and the netem payload pool for the links underneath. One Pools
// serves both endpoints of a Conn — the simulation loop is
// single-threaded, so there is no contention — and survives across runs
// when owned by a session.RunScratch, which is what makes the second
// drive through a recycled arena allocation-free on the packet path.
//
// Pools is not safe for concurrent use. Never share one Pools between
// concurrently executing simulations.
type Pools struct {
	// Net recycles packet payload clones inside the netem links.
	Net *netem.BufferPool

	bufs     [][]byte
	segs     []*segment
	partials []*partialMsg
}

// NewPools returns an empty pool set.
func NewPools() *Pools {
	return &Pools{Net: netem.NewBufferPool()}
}

// buf returns a length-n buffer (n ≤ fragBufCap) with arbitrary
// contents; callers overwrite every byte.
func (p *Pools) buf(n int) []byte {
	if l := len(p.bufs); l > 0 {
		b := p.bufs[l-1]
		p.bufs[l-1] = nil
		p.bufs = p.bufs[:l-1]
		return b[:n]
	}
	return make([]byte, n, fragBufCap)
}

// putBuf recycles a buffer taken from buf. Foreign buffers (different
// capacity) are dropped for the garbage collector.
func (p *Pools) putBuf(b []byte) {
	if cap(b) != fragBufCap {
		return
	}
	p.bufs = append(p.bufs, b[:0])
}

// seg returns a zeroed segment record.
func (p *Pools) seg() *segment {
	if l := len(p.segs); l > 0 {
		s := p.segs[l-1]
		p.segs[l-1] = nil
		p.segs = p.segs[:l-1]
		return s
	}
	return &segment{}
}

// putSeg recycles a segment record. The payload buffer is recycled
// separately (putBuf) by the caller.
func (p *Pools) putSeg(s *segment) {
	*s = segment{}
	p.segs = append(p.segs, s)
}

// partial returns a reassembly record sized for count chunks, with every
// chunk slot nil.
func (p *Pools) partial(count int) *partialMsg {
	var pm *partialMsg
	if l := len(p.partials); l > 0 {
		pm = p.partials[l-1]
		p.partials[l-1] = nil
		p.partials = p.partials[:l-1]
	} else {
		pm = &partialMsg{}
	}
	if cap(pm.chunks) < count {
		pm.chunks = make([][]byte, count)
	} else {
		pm.chunks = pm.chunks[:count]
		clear(pm.chunks)
	}
	pm.have = 0
	pm.firstTS = 0
	return pm
}

// putPartial recycles a reassembly record. Chunk buffers still attached
// are recycled too.
func (p *Pools) putPartial(pm *partialMsg) {
	for i, c := range pm.chunks {
		if c != nil {
			p.putBuf(c)
			pm.chunks[i] = nil
		}
	}
	p.partials = append(p.partials, pm)
}
