package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"teledrive/internal/netem"
	"teledrive/internal/simclock"
)

// msgRec records delivered messages.
type msgRec struct {
	payloads  []string
	seqs      []uint64
	latencies []time.Duration
}

func (m *msgRec) handler(payload []byte, seq uint64, latency time.Duration) {
	m.payloads = append(m.payloads, string(payload))
	m.seqs = append(m.seqs, seq)
	m.latencies = append(m.latencies, latency)
}

func newPair(t *testing.T, opts Options) (*simclock.Clock, *Conn, *msgRec, *msgRec) {
	t.Helper()
	clk := simclock.New()
	ra, rb := &msgRec{}, &msgRec{}
	conn := Connect(clk, 42, opts, ra.handler, rb.handler)
	return clk, conn, ra, rb
}

func TestReliableBasicExchange(t *testing.T) {
	clk, conn, ra, rb := newPair(t, Options{Reliable: true})
	if err := conn.A.Send([]byte("frame-1")); err != nil {
		t.Fatal(err)
	}
	if err := conn.B.Send([]byte("cmd-1")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	if len(rb.payloads) != 1 || rb.payloads[0] != "frame-1" {
		t.Fatalf("B received %v", rb.payloads)
	}
	if len(ra.payloads) != 1 || ra.payloads[0] != "cmd-1" {
		t.Fatalf("A received %v", ra.payloads)
	}
	if conn.A.InFlight() != 0 || conn.B.InFlight() != 0 {
		t.Fatalf("in flight after ack: A=%d B=%d", conn.A.InFlight(), conn.B.InFlight())
	}
}

func TestReliableInOrderUnderJitterReordering(t *testing.T) {
	clk, conn, _, rb := newPair(t, Options{Reliable: true})
	// Heavy jitter reorders packets on the wire; the reliable channel
	// must still deliver in order.
	if err := conn.Links.Down.AddRule(netem.Rule{
		Delay: 30 * time.Millisecond, Jitter: 25 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := conn.A.Send([]byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(2 * time.Millisecond)
	}
	clk.Advance(5 * time.Second)
	if len(rb.payloads) != n {
		t.Fatalf("delivered %d, want %d", len(rb.payloads), n)
	}
	for i, p := range rb.payloads {
		if p != fmt.Sprintf("m%03d", i) {
			t.Fatalf("out of order at %d: %v", i, rb.payloads[:i+1])
		}
	}
}

func TestReliableRecoversFromLoss(t *testing.T) {
	clk, conn, _, rb := newPair(t, Options{Reliable: true})
	conn.Links.Down.AddRule(netem.Rule{Loss: 0.3})
	const n = 100
	for i := 0; i < n; i++ {
		if err := conn.A.Send([]byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		clk.Advance(20 * time.Millisecond)
	}
	clk.Advance(time.Minute)
	if len(rb.payloads) != n {
		t.Fatalf("delivered %d, want %d (loss must be fully recovered)", len(rb.payloads), n)
	}
	for i, p := range rb.payloads {
		if p != fmt.Sprintf("m%03d", i) {
			t.Fatalf("out of order at %d", i)
		}
	}
	if conn.A.Stats().Retransmits == 0 {
		t.Fatal("expected retransmissions under 30% loss")
	}
}

func TestHeadOfLineBlockingStall(t *testing.T) {
	// The paper's key transport phenomenon: one lost video frame stalls
	// all later frames until a retransmission lands, then they burst
	// out. With fewer than three following frames there are not enough
	// duplicate ACKs for fast retransmit, so the RTO drives recovery.
	clk, conn, _, rb := newPair(t, Options{Reliable: true})

	// Drop exactly the first data frame using 100% loss for one send.
	conn.Links.Down.AddRule(netem.Rule{Loss: 1})
	conn.A.Send([]byte("m0"))
	conn.Links.Down.DeleteRule()

	for i := 1; i <= 2; i++ {
		conn.A.Send([]byte(fmt.Sprintf("m%d", i)))
		clk.Advance(10 * time.Millisecond)
	}
	// Both arrived but are held: nothing delivered yet.
	if len(rb.payloads) != 0 {
		t.Fatalf("delivered %v before retransmit", rb.payloads)
	}
	// After the RTO the retransmitted m0 unblocks the whole run.
	clk.Advance(DefaultRTOMin + 50*time.Millisecond)
	if len(rb.payloads) != 3 {
		t.Fatalf("delivered %d after RTO, want 3", len(rb.payloads))
	}
	if rb.payloads[0] != "m0" || rb.payloads[2] != "m2" {
		t.Fatalf("order: %v", rb.payloads)
	}
	// Later messages carry the blocking time in their latency.
	if rb.latencies[1] < DefaultRTOMin/2 {
		t.Fatalf("m1 latency %v does not reflect HoL blocking", rb.latencies[1])
	}
}

func TestFastRetransmitBeatsRTO(t *testing.T) {
	// With a steady frame stream behind the hole, three duplicate ACKs
	// trigger fast retransmit well before the 200 ms RTO — the stall is
	// short, exactly the "skipped frames" feel the paper describes.
	clk, conn, _, rb := newPair(t, Options{Reliable: true})
	conn.Links.Down.AddRule(netem.Rule{Loss: 1})
	conn.A.Send([]byte("m0"))
	conn.Links.Down.DeleteRule()

	for i := 1; i <= 5; i++ {
		conn.A.Send([]byte(fmt.Sprintf("m%d", i)))
		clk.Advance(10 * time.Millisecond)
	}
	// 50 ms elapsed: fast retransmit has already recovered the hole.
	if len(rb.payloads) != 6 {
		t.Fatalf("delivered %d within 50ms, want 6 via fast retransmit", len(rb.payloads))
	}
	if rb.payloads[0] != "m0" || rb.payloads[5] != "m5" {
		t.Fatalf("order: %v", rb.payloads)
	}
	if got := conn.A.Stats().Retransmits; got != 1 {
		t.Fatalf("retransmits = %d, want exactly 1 (fast)", got)
	}
}

func TestWindowFull(t *testing.T) {
	clk, conn, _, _ := newPair(t, Options{Reliable: true, Window: 4})
	// Black-hole the link so nothing is ever acked.
	conn.Links.Down.AddRule(netem.Rule{Loss: 1})
	for i := 0; i < 4; i++ {
		if err := conn.A.Send([]byte("x")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	err := conn.A.Send([]byte("x"))
	if !errors.Is(err, ErrWindowFull) {
		t.Fatalf("err = %v, want ErrWindowFull", err)
	}
	if got := conn.A.Stats().WindowRejects; got != 1 {
		t.Fatalf("WindowRejects = %d", got)
	}
	_ = clk
}

func TestWindowReopensAfterAck(t *testing.T) {
	clk, conn, _, rb := newPair(t, Options{Reliable: true, Window: 2})
	conn.A.Send([]byte("a"))
	conn.A.Send([]byte("b"))
	if err := conn.A.Send([]byte("c")); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("expected window full, got %v", err)
	}
	clk.Advance(10 * time.Millisecond) // deliver + acks
	if err := conn.A.Send([]byte("c")); err != nil {
		t.Fatalf("window did not reopen: %v", err)
	}
	clk.Advance(10 * time.Millisecond)
	if len(rb.payloads) != 3 {
		t.Fatalf("delivered %v", rb.payloads)
	}
}

func TestCorruptionDetectedAndRecovered(t *testing.T) {
	clk, conn, _, rb := newPair(t, Options{Reliable: true})
	conn.Links.Down.AddRule(netem.Rule{Corrupt: 0.5})
	const n = 60
	for i := 0; i < n; i++ {
		conn.A.Send([]byte(fmt.Sprintf("m%03d", i)))
		clk.Advance(20 * time.Millisecond)
	}
	clk.Advance(time.Minute)
	if len(rb.payloads) != n {
		t.Fatalf("delivered %d, want %d", len(rb.payloads), n)
	}
	if conn.B.Stats().CorruptDropped == 0 {
		t.Fatal("no corrupt frames detected under 50% corruption")
	}
}

func TestRTTEstimateConverges(t *testing.T) {
	clk, conn, _, _ := newPair(t, Options{Reliable: true})
	conn.Links.ApplyBoth(netem.Rule{Delay: 25 * time.Millisecond})
	for i := 0; i < 50; i++ {
		conn.A.Send([]byte("ping"))
		clk.Advance(100 * time.Millisecond)
	}
	srtt := conn.A.Stats().SRTT
	if srtt < 40*time.Millisecond || srtt > 60*time.Millisecond {
		t.Fatalf("SRTT = %v, want ≈50ms (25ms each way)", srtt)
	}
}

func TestDatagramModeDropsSilently(t *testing.T) {
	clk, conn, _, rb := newPair(t, Options{Reliable: false})
	conn.Links.Down.AddRule(netem.Rule{Loss: 0.5, Limit: 10000})
	const n = 2000
	for i := 0; i < n; i++ {
		if err := conn.A.Send([]byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	got := len(rb.payloads)
	if got == 0 || got == n {
		t.Fatalf("datagram deliveries = %d, want partial delivery", got)
	}
	if conn.A.Stats().Retransmits != 0 {
		t.Fatal("datagram mode must never retransmit")
	}
}

func TestDatagramStaleCounting(t *testing.T) {
	clk, conn, _, rb := newPair(t, Options{Reliable: false})
	// Strong jitter reorders datagrams; stale arrivals are counted but
	// still delivered.
	conn.Links.Down.AddRule(netem.Rule{Delay: 20 * time.Millisecond, Jitter: 19 * time.Millisecond})
	const n = 200
	for i := 0; i < n; i++ {
		conn.A.Send([]byte("v"))
		clk.Advance(time.Millisecond)
	}
	clk.Advance(time.Second)
	if len(rb.payloads) != n {
		t.Fatalf("delivered %d, want %d", len(rb.payloads), n)
	}
	if conn.B.Stats().DatagramsStale == 0 {
		t.Fatal("expected stale datagrams under heavy jitter")
	}
}

func TestSendWithoutLinkFails(t *testing.T) {
	clk := simclock.New()
	e := NewEndpoint(clk, Options{Reliable: true}, func([]byte, uint64, time.Duration) {})
	if err := e.Send([]byte("x")); err == nil {
		t.Fatal("Send without link succeeded")
	}
}

func TestDeliveredSeqsAreSenderSeqs(t *testing.T) {
	clk, conn, _, rb := newPair(t, Options{Reliable: true})
	for i := 0; i < 5; i++ {
		conn.A.Send([]byte("x"))
		clk.Advance(time.Millisecond)
	}
	for i, s := range rb.seqs {
		if s != uint64(i+1) {
			t.Fatalf("seqs = %v", rb.seqs)
		}
	}
}

func TestBidirectionalFaultHitsBothStreams(t *testing.T) {
	clk, conn, ra, rb := newPair(t, Options{Reliable: true})
	conn.Links.ApplyBoth(netem.Rule{Delay: 50 * time.Millisecond})
	conn.A.Send([]byte("video"))
	conn.B.Send([]byte("command"))
	clk.Advance(49 * time.Millisecond)
	if len(ra.payloads)+len(rb.payloads) != 0 {
		t.Fatal("messages arrived before the injected delay")
	}
	clk.Advance(2 * time.Millisecond)
	if len(ra.payloads) != 1 || len(rb.payloads) != 1 {
		t.Fatalf("A=%v B=%v", ra.payloads, rb.payloads)
	}
	if ra.latencies[0] < 50*time.Millisecond || rb.latencies[0] < 50*time.Millisecond {
		t.Fatalf("latencies %v %v below injected delay", ra.latencies, rb.latencies)
	}
}

func TestRetransmitBackoffBounded(t *testing.T) {
	clk, conn, _, _ := newPair(t, Options{Reliable: true, RTOMin: 50 * time.Millisecond, RTOMax: 400 * time.Millisecond})
	conn.Links.Down.AddRule(netem.Rule{Loss: 1})
	conn.A.Send([]byte("doomed"))
	clk.Advance(10 * time.Second)
	rtx := conn.A.Stats().Retransmits
	// With backoff capped at RTOMax=400ms, 10s of black hole yields at
	// least 10s/400ms = 25 retransmissions minus the ramp-up.
	if rtx < 20 {
		t.Fatalf("retransmits = %d, want ≥20 (timer must keep firing)", rtx)
	}
	if conn.A.InFlight() != 1 {
		t.Fatalf("in flight = %d, want 1", conn.A.InFlight())
	}
}

func TestLatencyAccountsRetransmission(t *testing.T) {
	clk, conn, _, rb := newPair(t, Options{Reliable: true})
	conn.Links.Down.AddRule(netem.Rule{Loss: 1})
	conn.A.Send([]byte("m"))
	conn.Links.Down.DeleteRule()
	clk.Advance(5 * time.Second)
	if len(rb.payloads) != 1 {
		t.Fatalf("delivered %d", len(rb.payloads))
	}
	if rb.latencies[0] < DefaultRTOMin {
		t.Fatalf("latency %v must include the RTO wait", rb.latencies[0])
	}
}

func TestConnDeterminism(t *testing.T) {
	run := func() []string {
		clk := simclock.New()
		var got []string
		rec := func(p []byte, seq uint64, l time.Duration) {
			got = append(got, fmt.Sprintf("%s@%d/%v", p, seq, l))
		}
		conn := Connect(clk, 7, Options{Reliable: true}, func([]byte, uint64, time.Duration) {}, rec)
		conn.Links.ApplyBoth(netem.Rule{Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, Loss: 0.1})
		for i := 0; i < 200; i++ {
			conn.A.Send([]byte(fmt.Sprintf("m%d", i)))
			clk.Advance(15 * time.Millisecond)
		}
		clk.Advance(10 * time.Second)
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	clk, conn, _, rb := newPair(t, Options{Reliable: true})
	big := make([]byte, 3*MTU+123)
	for i := range big {
		big[i] = byte(i * 7)
	}
	if err := conn.A.Send(big); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	if len(rb.payloads) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(rb.payloads))
	}
	if rb.payloads[0] != string(big) {
		t.Fatal("fragmented payload corrupted")
	}
	if got := conn.A.Stats().FragmentsSent; got != 4 {
		t.Fatalf("fragments = %d, want 4", got)
	}
}

func TestFragmentLossStallsWholeMessage(t *testing.T) {
	// Losing ONE fragment of a frame delays the whole frame — the
	// many-packets-per-frame effect that makes small loss rates so
	// punishing for video.
	clk, conn, _, rb := newPair(t, Options{Reliable: true})
	big := make([]byte, 5*MTU)

	conn.Links.Down.AddRule(netem.Rule{Loss: 1})
	// Black-hole exactly one fragment: send under loss for a moment.
	// Instead: send the message with loss on, then clear — all fragments
	// lost; retransmission recovers them one RTO at a time. Simpler:
	// use a one-shot: drop only the first fragment via a rule window.
	conn.Links.Down.DeleteRule()

	// Deterministic single-fragment drop: set 100% loss, send one
	// fragment's worth via a small message, then the big one clean.
	// (Direct single-fragment surgery isn't exposed; approximate by
	// sending under 20% loss and verifying eventual delivery + a stall.)
	conn.Links.Down.AddRule(netem.Rule{Loss: 0.2})
	start := clk.Now()
	for i := 0; i < 20; i++ {
		if err := conn.A.Send(big); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		clk.Advance(36 * time.Millisecond)
	}
	clk.Advance(10 * time.Second)
	if len(rb.payloads) != 20 {
		t.Fatalf("delivered %d, want all 20 despite fragment loss", len(rb.payloads))
	}
	// At 20% per-fragment loss with 5 fragments, most messages needed a
	// retransmission: latency spread must show stalls.
	var maxLat time.Duration
	for _, l := range rb.latencies {
		if l > maxLat {
			maxLat = l
		}
	}
	if maxLat < 30*time.Millisecond {
		t.Fatalf("max latency %v shows no head-of-line stall", maxLat)
	}
	_ = start
}

func TestDatagramFragmentLossDropsMessage(t *testing.T) {
	clk, conn, _, rb := newPair(t, Options{Reliable: false})
	big := make([]byte, 10*MTU)
	conn.Links.Down.AddRule(netem.Rule{Loss: 0.3, Limit: 100000})
	const n = 200
	for i := 0; i < n; i++ {
		if err := conn.A.Send(big); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Millisecond)
	}
	clk.Advance(time.Second)
	// P(all 10 fragments survive) = 0.7^10 ≈ 2.8%; most messages vanish
	// entirely, none arrive corrupted or partial.
	if len(rb.payloads) >= n/2 {
		t.Fatalf("delivered %d of %d; datagram fragmentation should drop incomplete messages", len(rb.payloads), n)
	}
	for i, p := range rb.payloads {
		if len(p) != len(big) {
			t.Fatalf("message %d truncated: %d bytes", i, len(p))
		}
	}
}

func TestSendRejectsOversizedMessage(t *testing.T) {
	_, conn, _, _ := newPair(t, Options{Reliable: true})
	if err := conn.A.Send(make([]byte, MaxPayload+1)); !errors.Is(err, ErrPayloadTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestWindowCountsFragments(t *testing.T) {
	_, conn, _, _ := newPair(t, Options{Reliable: true, Window: 8})
	conn.Links.Down.AddRule(netem.Rule{Loss: 1}) // never acked
	// One 5-fragment message fits; a second does not (10 > 8).
	if err := conn.A.Send(make([]byte, 5*MTU)); err != nil {
		t.Fatal(err)
	}
	if err := conn.A.Send(make([]byte, 5*MTU)); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("err = %v, want window full", err)
	}
	// A small message still fits in the remaining 3 slots.
	if err := conn.A.Send([]byte("small")); err != nil {
		t.Fatalf("small message rejected: %v", err)
	}
}

func TestCongestionSlowStartGrowth(t *testing.T) {
	clk, conn, _, _ := newPair(t, Options{Reliable: true, Congestion: true})
	if got := conn.A.Cwnd(); got != 10 {
		t.Fatalf("initial cwnd = %v, want 10", got)
	}
	// Clean ACKs grow the window.
	for i := 0; i < 30; i++ {
		conn.A.Send(make([]byte, 2*MTU))
		clk.Advance(10 * time.Millisecond)
	}
	if got := conn.A.Cwnd(); got <= 10 {
		t.Fatalf("cwnd after clean transfer = %v, want growth", got)
	}
}

func TestCongestionCollapseOnRTO(t *testing.T) {
	clk, conn, _, _ := newPair(t, Options{Reliable: true, Congestion: true})
	conn.Links.Down.AddRule(netem.Rule{Loss: 1})
	conn.A.Send(make([]byte, MTU))
	clk.Advance(2 * time.Second) // several RTOs
	if got := conn.A.Cwnd(); got > 1.5 {
		t.Fatalf("cwnd after RTOs = %v, want collapse to ≈1", got)
	}
}

func TestCongestionFastRecoveryHalves(t *testing.T) {
	clk, conn, _, _ := newPair(t, Options{Reliable: true, Congestion: true})
	// Grow the window first.
	for i := 0; i < 50; i++ {
		conn.A.Send(make([]byte, 2*MTU))
		clk.Advance(10 * time.Millisecond)
	}
	before := conn.A.Cwnd()
	// Drop one fragment, deliver the rest: dup ACKs → fast retransmit.
	conn.Links.Down.AddRule(netem.Rule{Loss: 1})
	conn.A.Send(make([]byte, MTU))
	conn.Links.Down.DeleteRule()
	for i := 0; i < 5; i++ {
		conn.A.Send(make([]byte, MTU))
		clk.Advance(5 * time.Millisecond)
	}
	clk.Advance(100 * time.Millisecond)
	after := conn.A.Cwnd()
	if after >= before {
		t.Fatalf("cwnd %v -> %v: no multiplicative decrease", before, after)
	}
}

func TestCongestionThroughputCollapseUnderLoss(t *testing.T) {
	// The Mathis effect: sustained loss caps TCP throughput. Count
	// frames delivered in a fixed time with and without loss.
	run := func(loss float64) int {
		clk := simclock.New()
		n := 0
		conn := Connect(clk, 3, Options{Reliable: true, Congestion: true},
			func([]byte, uint64, time.Duration) {},
			func([]byte, uint64, time.Duration) { n++ },
		)
		if loss > 0 {
			conn.Links.Down.AddRule(netem.Rule{Loss: loss, Limit: 100000})
		}
		frame := make([]byte, 24000)
		for i := 0; i < 280; i++ { // 10 s of 28 fps video
			_ = conn.A.Send(frame) // window-full drops are the point
			clk.Advance(36 * time.Millisecond)
		}
		clk.Advance(10 * time.Second)
		return n
	}
	clean := run(0)
	lossy := run(0.05)
	if clean < 250 {
		t.Fatalf("clean congestion-controlled stream delivered only %d frames", clean)
	}
	if lossy >= clean*9/10 {
		t.Fatalf("5%% loss delivered %d of %d frames; expected visible throughput collapse", lossy, clean)
	}
}
