package transport

import (
	"errors"
	"fmt"
	"time"

	"teledrive/internal/netem"
	"teledrive/internal/simclock"
)

// Default timer bounds. RTOMin matches Linux TCP's 200 ms floor — the
// constant responsible for the "video freezes then jumps" experience the
// paper reports at 5 % packet loss.
const (
	DefaultRTOMin = 200 * time.Millisecond
	DefaultRTOMax = 3 * time.Second
	// DefaultWindow is the maximum number of unacknowledged fragments
	// (MTU-sized packets), ≈ a 700 KiB socket buffer. When the window is
	// full, Send fails and the application decides what to drop (the
	// bridge drops stale video frames, like a saturated encoder queue).
	DefaultWindow = 512
)

// ErrWindowFull is returned by Send when the reliable channel has too
// many unacknowledged messages in flight.
var ErrWindowFull = errors.New("transport: send window full")

// MTU is the maximum fragment payload carried in one network packet.
// Messages larger than this are fragmented — exactly why a video frame
// of tens of kilobytes suffers far more from p% packet loss than p% of
// frames: with n fragments per frame, the chance a frame needs at least
// one retransmission is 1−(1−p)ⁿ.
const MTU = 1400

// fragment header: flags(1) msgID(4) fragIdx(2) fragCount(2).
const (
	fragHeaderLen = 9
	fragFlagLast  = 1 << 0
)

// Stats counts endpoint activity.
type Stats struct {
	MsgsSent       uint64
	FragmentsSent  uint64 // MTU-sized packets produced by fragmentation
	MsgsDelivered  uint64 // in-order deliveries to the application
	Retransmits    uint64
	CorruptDropped uint64 // frames that failed CRC/decoding
	DuplicateDrops uint64 // already-delivered data frames
	OutOfOrderHeld uint64 // frames buffered waiting for a gap to fill
	AcksSent       uint64
	AcksReceived   uint64
	WindowRejects  uint64 // Send calls rejected by a full window
	DatagramsStale uint64 // datagrams that arrived older than one already delivered
	SRTT           time.Duration
	RTO            time.Duration
}

// Handler consumes application messages delivered by an endpoint. seq is
// the sender's message sequence; latency is the end-to-end message
// latency including retransmission and head-of-line blocking time.
type Handler func(payload []byte, seq uint64, latency time.Duration)

// Options configures an Endpoint.
type Options struct {
	// Name appears in error messages ("vehicle", "station").
	Name string
	// Reliable selects the mini-TCP mode (true, default via NewReliable)
	// or fire-and-forget datagrams (false, via NewDatagram).
	Reliable bool
	// Window overrides DefaultWindow. Only meaningful when Reliable.
	Window int
	// RTOMin/RTOMax override the retransmission-timeout bounds.
	RTOMin, RTOMax time.Duration
	// Congestion enables Reno-style congestion control (slow start,
	// AIMD, multiplicative decrease on loss). Off by default: the
	// paper's loopback link has effectively unlimited bandwidth, so the
	// calibrated experiments run with a fixed window; enable this to
	// study throughput collapse under loss (BenchmarkAblationCongestion).
	Congestion bool
	// Pools, when non-nil, makes the endpoint recycle fragment buffers,
	// segment records, and reassembly state instead of allocating per
	// packet. It tightens the delivery contract: a Handler must not
	// retain the payload slice past the callback (copy what it keeps —
	// every handler in this repo already does). Connect also attaches
	// Pools.Net to both netem links. Nil keeps the legacy
	// allocate-per-packet behavior and the laxer contract.
	Pools *Pools
}

func (o *Options) fillDefaults() {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.RTOMin <= 0 {
		o.RTOMin = DefaultRTOMin
	}
	if o.RTOMax <= 0 {
		o.RTOMax = DefaultRTOMax
	}
	if o.Name == "" {
		o.Name = "endpoint"
	}
}

// Endpoint is one side of a message channel. Create a connected pair
// with Connect, or wire endpoints to links manually with AttachLink +
// HandlePacket. Endpoint is not safe for concurrent use; it is driven by
// the single-threaded simulation loop.
type Endpoint struct {
	opts    Options
	clock   *simclock.Clock
	out     *netem.Link
	handler Handler
	stats   Stats

	// Sender state.
	nextSeq  uint64
	unacked  []*segment // ordered by seq
	rtxTimer *simclock.Timer
	srtt     time.Duration
	rttvar   time.Duration
	rto      time.Duration
	backoff  uint
	lastAck  uint64
	dupAcks  int
	cwnd     float64 // congestion window in fragments (Congestion mode)
	ssthresh float64

	// Receiver state.
	nextExpected uint64             // next in-order seq to deliver (reliable)
	held         map[uint64]heldMsg // out-of-order buffer
	lastDatagram uint64             // newest datagram msgID delivered

	// Sender-side message numbering (one message = one or more
	// fragments).
	nextMsgID uint32
	// Reassembly of fragmented messages, keyed by msgID.
	partials map[uint32]*partialMsg

	// Recycling state (nil/empty without Options.Pools, except the wire
	// and fragment scratch, which are safe unconditionally: netem clones
	// every Send and the fragment slice is consumed within Send).
	pools       *Pools
	wireBuf     []byte   // EncodeFrameAppend scratch for transmit/sendAck
	fragScratch [][]byte // fragmentize output slice, reused across Sends
	asmBuf      []byte   // reassembly scratch (pools mode only)
}

type partialMsg struct {
	chunks  [][]byte
	have    int
	firstTS time.Duration
}

type segment struct {
	seq     uint64
	payload []byte
	sentAt  time.Duration
	rtx     bool // retransmitted at least once (Karn's rule)
}

type heldMsg struct {
	payload []byte
	sentAt  time.Duration
}

// NewEndpoint creates an endpoint. The handler receives delivered
// messages; it must be non-nil. Call AttachLink before Send.
func NewEndpoint(clock *simclock.Clock, opts Options, handler Handler) *Endpoint {
	if clock == nil || handler == nil {
		panic("transport: NewEndpoint requires a clock and a handler")
	}
	opts.fillDefaults()
	e := &Endpoint{
		opts:         opts,
		clock:        clock,
		handler:      handler,
		nextSeq:      1,
		nextExpected: 1,
		held:         make(map[uint64]heldMsg),
		partials:     make(map[uint32]*partialMsg),
		rto:          opts.RTOMin,
		cwnd:         10, // RFC 6928 initial window
		ssthresh:     float64(opts.Window),
		pools:        opts.Pools,
	}
	// One owned retransmission timer, re-armed for the endpoint's whole
	// life instead of a fresh Timer per arming. It starts stopped, so the
	// Send-side Stopped() check arms it on first use exactly as before.
	e.rtxTimer = clock.NewTimer(e.onTimeout)
	return e
}

// sendWindow returns the current effective send window in fragments.
func (e *Endpoint) sendWindow() int {
	if !e.opts.Congestion {
		return e.opts.Window
	}
	w := int(e.cwnd)
	if w < 1 {
		w = 1
	}
	if w > e.opts.Window {
		w = e.opts.Window
	}
	return w
}

// Cwnd returns the congestion window in fragments (meaningful only in
// Congestion mode).
func (e *Endpoint) Cwnd() float64 { return e.cwnd }

// fragmentize splits a message into MTU-sized chunks, each prefixed with
// the fragment header: flags(1) msgID(4) fragIdx(2) fragCount(2). The
// returned slice is the endpoint's reused scratch, valid until the next
// Send; the fragment buffers come from the pool when one is attached.
func (e *Endpoint) fragmentize(msgID uint32, payload []byte) [][]byte {
	n := (len(payload) + MTU - 1) / MTU
	if n == 0 {
		n = 1
	}
	out := e.fragScratch[:0]
	for i := 0; i < n; i++ {
		lo := i * MTU
		hi := lo + MTU
		if hi > len(payload) {
			hi = len(payload)
		}
		chunk := payload[lo:hi]
		var buf []byte
		if e.pools != nil {
			buf = e.pools.buf(fragHeaderLen + len(chunk))
		} else {
			buf = make([]byte, fragHeaderLen+len(chunk))
		}
		if i == n-1 {
			buf[0] = fragFlagLast
		} else {
			buf[0] = 0
		}
		buf[1] = byte(msgID >> 24)
		buf[2] = byte(msgID >> 16)
		buf[3] = byte(msgID >> 8)
		buf[4] = byte(msgID)
		buf[5] = byte(i >> 8)
		buf[6] = byte(i)
		buf[7] = byte(n >> 8)
		buf[8] = byte(n)
		copy(buf[fragHeaderLen:], chunk)
		out = append(out, buf)
	}
	e.fragScratch = out
	return out
}

// cloneFrag copies a fragment-sized buffer into pooled storage when a
// pool is attached, else into a fresh allocation.
func (e *Endpoint) cloneFrag(b []byte) []byte {
	if e.pools != nil && len(b) <= fragBufCap {
		out := e.pools.buf(len(b))
		copy(out, b)
		return out
	}
	return cloneBytes(b)
}

// recycleBuf returns a buffer obtained from the pool; a no-op without
// one (the garbage collector takes it).
func (e *Endpoint) recycleBuf(b []byte) {
	if e.pools != nil {
		e.pools.putBuf(b)
	}
}

// parseFragment splits a fragment header off a wire payload.
func parseFragment(buf []byte) (msgID uint32, idx, count int, chunk []byte, ok bool) {
	if len(buf) < fragHeaderLen {
		return 0, 0, 0, nil, false
	}
	msgID = uint32(buf[1])<<24 | uint32(buf[2])<<16 | uint32(buf[3])<<8 | uint32(buf[4])
	idx = int(buf[5])<<8 | int(buf[6])
	count = int(buf[7])<<8 | int(buf[8])
	if count == 0 || idx >= count {
		return 0, 0, 0, nil, false
	}
	return msgID, idx, count, buf[fragHeaderLen:], true
}

// AttachLink sets the egress link toward the peer.
func (e *Endpoint) AttachLink(out *netem.Link) { e.out = out }

// Stats returns a snapshot of the endpoint counters, including the
// current RTT estimate.
func (e *Endpoint) Stats() Stats {
	s := e.stats
	s.SRTT = e.srtt
	s.RTO = e.rto
	return s
}

// InFlight returns the number of unacknowledged messages.
func (e *Endpoint) InFlight() int { return len(e.unacked) }

// Send transmits one application message to the peer, fragmenting it
// into MTU-sized packets. In reliable mode it returns ErrWindowFull when
// the message's fragments do not fit in the unacknowledged window; in
// datagram mode it never fails (fragments may silently be lost, losing
// the whole message).
func (e *Endpoint) Send(payload []byte) error {
	if e.out == nil {
		return fmt.Errorf("transport: %s: no link attached", e.opts.Name)
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooBig, len(payload))
	}
	now := e.clock.Now()
	e.nextMsgID++
	frags := e.fragmentize(e.nextMsgID, payload)

	if !e.opts.Reliable {
		for _, frag := range frags {
			wire, err := EncodeFrameAppend(e.wireBuf[:0], Frame{Type: FrameDatagram, Seq: e.nextSeq, Timestamp: now, Payload: frag})
			if err != nil {
				return err
			}
			e.wireBuf = wire
			e.nextSeq++
			e.stats.FragmentsSent++
			e.out.Send(wire) // netem clones; wire and frag are free again
			e.recycleBuf(frag)
		}
		e.stats.MsgsSent++
		return nil
	}

	// Window admission. In fixed-window mode the whole message must
	// fit. In congestion mode a message may overshoot the window once
	// the pipe has room (messages are atomic here, unlike TCP's byte
	// stream, so a frame larger than cwnd must still be sendable).
	if e.opts.Congestion {
		if len(e.unacked) >= e.sendWindow() {
			e.stats.WindowRejects++
			e.recycleFrags(frags)
			return fmt.Errorf("%w (%s: %d in flight, cwnd %d)", ErrWindowFull, e.opts.Name, len(e.unacked), e.sendWindow())
		}
	} else if len(e.unacked)+len(frags) > e.opts.Window {
		e.stats.WindowRejects++
		e.recycleFrags(frags)
		return fmt.Errorf("%w (%s: %d in flight, %d new, window %d)", ErrWindowFull, e.opts.Name, len(e.unacked), len(frags), e.opts.Window)
	}
	for _, frag := range frags {
		var seg *segment
		if e.pools != nil {
			seg = e.pools.seg()
			seg.seq, seg.payload, seg.sentAt = e.nextSeq, frag, now
		} else {
			seg = &segment{seq: e.nextSeq, payload: frag, sentAt: now}
		}
		e.nextSeq++
		e.unacked = append(e.unacked, seg)
		e.stats.FragmentsSent++
		e.transmit(seg, now)
	}
	e.stats.MsgsSent++
	if e.rtxTimer.Stopped() {
		e.armTimer()
	}
	return nil
}

// recycleFrags returns a window-rejected message's fragments to the pool.
func (e *Endpoint) recycleFrags(frags [][]byte) {
	if e.pools == nil {
		return
	}
	for _, frag := range frags {
		e.pools.putBuf(frag)
	}
}

func (e *Endpoint) transmit(seg *segment, now time.Duration) {
	wire, err := EncodeFrameAppend(e.wireBuf[:0], Frame{Type: FrameData, Seq: seg.seq, Timestamp: now, Payload: seg.payload})
	if err != nil {
		// Payload size is validated once at Send time; failure here is a
		// programming error worth surfacing loudly in simulation.
		panic(fmt.Sprintf("transport: %s: encode: %v", e.opts.Name, err))
	}
	e.wireBuf = wire
	e.out.Send(wire)
}

// HandlePacket is the netem receiver for the endpoint's ingress link:
// wire it as the peer link's delivery callback.
func (e *Endpoint) HandlePacket(pkt netem.Packet) {
	f, err := DecodeFrame(pkt.Payload)
	if err != nil {
		// Corrupt frames are indistinguishable from loss, as on a real
		// NIC that drops bad-checksum packets.
		e.stats.CorruptDropped++
		return
	}
	switch f.Type {
	case FrameAck:
		e.handleAck(f)
	case FrameData:
		e.handleData(f)
	case FrameDatagram:
		e.handleDatagram(f)
	default:
		e.stats.CorruptDropped++
	}
}

func (e *Endpoint) handleData(f Frame) {
	now := e.clock.Now()
	switch {
	case f.Seq < e.nextExpected:
		e.stats.DuplicateDrops++
	case f.Seq == e.nextExpected:
		e.acceptFragment(f.Payload, f.Timestamp, now)
		e.nextExpected++
		// Flush any consecutive held fragments. acceptFragment copies
		// what it keeps, so the held buffer is free afterwards.
		for {
			h, ok := e.held[e.nextExpected]
			if !ok {
				break
			}
			delete(e.held, e.nextExpected)
			e.acceptFragment(h.payload, h.sentAt, now)
			e.recycleBuf(h.payload)
			e.nextExpected++
		}
	default: // gap: hold until the missing segment arrives
		if _, dup := e.held[f.Seq]; !dup {
			e.held[f.Seq] = heldMsg{payload: e.cloneFrag(f.Payload), sentAt: f.Timestamp}
			e.stats.OutOfOrderHeld++
		} else {
			e.stats.DuplicateDrops++
		}
	}
	e.sendAck()
}

func (e *Endpoint) handleDatagram(f Frame) {
	e.acceptFragment(f.Payload, f.Timestamp, e.clock.Now())
}

// acceptFragment feeds one received fragment into the reassembler and
// delivers the message once every fragment is present. The delivered
// latency spans from the earliest fragment's send time — so a frame
// delayed by a retransmitted fragment carries the whole stall.
func (e *Endpoint) acceptFragment(buf []byte, ts, now time.Duration) {
	msgID, idx, count, chunk, ok := parseFragment(buf)
	if !ok {
		e.stats.CorruptDropped++
		return
	}
	p := e.partials[msgID]
	if p == nil {
		if e.pools != nil {
			p = e.pools.partial(count)
			p.firstTS = ts
		} else {
			p = &partialMsg{chunks: make([][]byte, count), firstTS: ts}
		}
		e.partials[msgID] = p
	}
	if len(p.chunks) != count {
		// Inconsistent duplicate with a different count: drop the whole
		// message rather than deliver garbage.
		delete(e.partials, msgID)
		if e.pools != nil {
			e.pools.putPartial(p)
		}
		e.stats.CorruptDropped++
		return
	}
	if p.chunks[idx] == nil {
		p.chunks[idx] = e.cloneFrag(chunk)
		p.have++
	}
	if ts < p.firstTS {
		p.firstTS = ts
	}
	if p.have < count {
		return
	}
	total := 0
	for _, c := range p.chunks {
		total += len(c)
	}
	var full []byte
	if e.pools != nil {
		// Reused assembly scratch: the delivery contract under pooling
		// says the handler must not retain the payload, so one buffer
		// serves every delivery on this endpoint.
		if cap(e.asmBuf) < total {
			e.asmBuf = make([]byte, 0, total)
		}
		full = e.asmBuf[:0]
	} else {
		full = make([]byte, 0, total)
	}
	for _, c := range p.chunks {
		full = append(full, c...)
	}
	if e.pools != nil {
		e.asmBuf = full
	}
	delete(e.partials, msgID)
	firstTS := p.firstTS
	if e.pools != nil {
		e.pools.putPartial(p) // also recycles the chunk buffers
	}

	if !e.opts.Reliable {
		if msgID <= uint32(e.lastDatagram) && e.lastDatagram != 0 {
			// Stale datagram message: deliver anyway (the application
			// sees arrival order) but count it.
			e.stats.DatagramsStale++
		} else {
			e.lastDatagram = uint64(msgID)
		}
		// Garbage-collect partials that can no longer complete sensibly.
		for id, pm := range e.partials {
			if id+32 < msgID {
				delete(e.partials, id)
				if e.pools != nil {
					e.pools.putPartial(pm)
				}
			}
		}
	}
	e.deliver(full, uint64(msgID), now-firstTS)
}

func (e *Endpoint) deliver(payload []byte, seq uint64, latency time.Duration) {
	e.stats.MsgsDelivered++
	e.handler(payload, seq, latency)
}

func (e *Endpoint) sendAck() {
	// Cumulative ACK: everything below nextExpected has been delivered.
	wire, err := EncodeFrameAppend(e.wireBuf[:0], Frame{Type: FrameAck, Seq: e.nextExpected - 1, Timestamp: e.clock.Now()})
	if err != nil {
		panic(fmt.Sprintf("transport: %s: encode ack: %v", e.opts.Name, err))
	}
	e.wireBuf = wire
	e.stats.AcksSent++
	e.out.Send(wire)
}

func (e *Endpoint) handleAck(f Frame) {
	e.stats.AcksReceived++
	acked := f.Seq
	now := e.clock.Now()
	// unacked is ordered by seq and ACKs are cumulative, so the acked
	// segments are exactly the prefix with seq <= acked.
	m := 0
	hadRtx := false
	for m < len(e.unacked) && e.unacked[m].seq <= acked {
		if e.unacked[m].rtx {
			hadRtx = true
		}
		m++
	}
	// RTT sampling: Karn's algorithm, extended to cumulative ACKs — a
	// run that includes any retransmitted segment yields no sample,
	// because the older segments in it were acknowledged late due to
	// head-of-line blocking, not network delay. Otherwise sample the
	// highest (most recently sent) segment.
	if m > 0 && !hadRtx {
		e.updateRTT(now - e.unacked[m-1].sentAt)
	}
	if m > 0 {
		newlyAcked := m
		if e.pools != nil {
			for _, seg := range e.unacked[:m] {
				e.pools.putBuf(seg.payload)
				e.pools.putSeg(seg)
			}
		}
		n := copy(e.unacked, e.unacked[m:])
		clear(e.unacked[n:])
		e.unacked = e.unacked[:n]
		e.backoff = 0
		e.dupAcks = 0
		e.lastAck = acked
		if e.opts.Congestion {
			// Reno growth: exponential in slow start, additive after.
			for i := 0; i < newlyAcked; i++ {
				if e.cwnd < e.ssthresh {
					e.cwnd++
				} else {
					e.cwnd += 1 / e.cwnd
				}
			}
			if e.cwnd > float64(e.opts.Window) {
				e.cwnd = float64(e.opts.Window)
			}
		}
		e.rearmTimer()
		return
	}
	// No progress: a duplicate cumulative ACK signals that later segments
	// arrived past a hole. Three in a row trigger fast retransmit of the
	// oldest outstanding segment, as in TCP.
	if acked == e.lastAck && len(e.unacked) > 0 && e.unacked[0].seq == acked+1 {
		e.dupAcks++
		if e.dupAcks >= 3 {
			e.dupAcks = 0
			seg := e.unacked[0]
			seg.rtx = true
			e.stats.Retransmits++
			e.transmit(seg, seg.sentAt)
			if e.opts.Congestion {
				// Fast recovery: multiplicative decrease.
				e.ssthresh = e.cwnd / 2
				if e.ssthresh < 2 {
					e.ssthresh = 2
				}
				e.cwnd = e.ssthresh
			}
			e.rearmTimer()
		}
	} else {
		e.lastAck = acked
		e.dupAcks = 0
	}
}

func (e *Endpoint) updateRTT(sample time.Duration) {
	if sample < 0 {
		return
	}
	if e.srtt == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
	} else {
		diff := e.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		e.rttvar += (diff - e.rttvar) / 4
		e.srtt += (sample - e.srtt) / 8
	}
	e.rto = clampDur(e.srtt+4*e.rttvar, e.opts.RTOMin, e.opts.RTOMax)
}

// armTimer arms the owned retransmission timer. Reschedule consumes one
// clock sequence number, exactly like the fresh Schedule it replaced, so
// timer ordering — and therefore every trace — is unchanged.
func (e *Endpoint) armTimer() {
	d := e.rto << e.backoff
	if d > e.opts.RTOMax {
		d = e.opts.RTOMax
	}
	e.clock.Reschedule(e.rtxTimer, d)
}

func (e *Endpoint) rearmTimer() {
	e.clock.Cancel(e.rtxTimer)
	if len(e.unacked) > 0 {
		e.armTimer()
	}
}

func (e *Endpoint) onTimeout(now time.Duration) {
	if len(e.unacked) == 0 {
		return
	}
	// Go-back-N lite: retransmit the oldest unacked segment and back off.
	seg := e.unacked[0]
	seg.rtx = true
	e.stats.Retransmits++
	e.transmit(seg, seg.sentAt) // keep original timestamp for latency accounting
	if e.opts.Congestion {
		// RTO: collapse to one segment, as Reno does.
		e.ssthresh = e.cwnd / 2
		if e.ssthresh < 2 {
			e.ssthresh = 2
		}
		e.cwnd = 1
	}
	if e.backoff < 4 {
		e.backoff++
	}
	e.armTimer()
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Conn is a connected pair of endpoints with their two netem links,
// the standard way to build a vehicle↔station channel.
type Conn struct {
	// A and B are the two endpoints (conventionally A = vehicle,
	// B = station).
	A, B *Endpoint
	// Links carries traffic A→B on Down and B→A on Up, so a fault rule
	// applied to Links hits both the sensor stream and the command
	// stream, like the paper's loopback injection.
	Links *netem.Duplex
}

// Connect builds a reliable (or datagram, per opts.Reliable) duplex
// channel between two handlers. aHandler receives messages sent by B and
// vice versa.
func Connect(clock *simclock.Clock, seed int64, opts Options, aHandler, bHandler Handler) *Conn {
	optsA, optsB := opts, opts
	if optsA.Name == "" {
		optsA.Name, optsB.Name = "A", "B"
	} else {
		optsA.Name += "/A"
		optsB.Name += "/B"
	}
	a := NewEndpoint(clock, optsA, aHandler)
	b := NewEndpoint(clock, optsB, bHandler)
	links := netem.NewDuplex(clock, seed, b.HandlePacket, a.HandlePacket)
	if opts.Pools != nil {
		// One payload pool serves both directions: the simulation loop is
		// single-threaded, and an endpoint's received buffers recycle into
		// its own next sends.
		links.Down.SetBufferPool(opts.Pools.Net)
		links.Up.SetBufferPool(opts.Pools.Net)
	}
	a.AttachLink(links.Down)
	b.AttachLink(links.Up)
	return &Conn{A: a, B: b, Links: links}
}
