package transport

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Type: FrameData, Seq: 42, Timestamp: 1500 * time.Millisecond, Payload: []byte("steer left")}
	buf, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.Seq != f.Seq || got.Timestamp != f.Timestamp || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip: got %+v, want %+v", got, f)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(typ uint8, seq uint64, ts int64, payload []byte) bool {
		fr := Frame{Type: FrameType(typ), Seq: seq, Timestamp: time.Duration(ts), Payload: payload}
		buf, err := EncodeFrame(fr)
		if err != nil {
			return false
		}
		got, err := DecodeFrame(buf)
		if err != nil {
			return false
		}
		return got.Type == fr.Type && got.Seq == fr.Seq &&
			got.Timestamp == fr.Timestamp && bytes.Equal(got.Payload, fr.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	buf, err := EncodeFrame(Frame{Type: FrameAck, Seq: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || len(got.Payload) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestFramePayloadTooBig(t *testing.T) {
	_, err := EncodeFrame(Frame{Type: FrameData, Payload: make([]byte, MaxPayload+1)})
	if !errors.Is(err, ErrPayloadTooBig) {
		t.Fatalf("err = %v, want ErrPayloadTooBig", err)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := DecodeFrame([]byte{1, 2, 3}); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
	if _, err := DecodeFrame(nil); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	buf, _ := EncodeFrame(Frame{Type: FrameData, Payload: []byte("x")})
	buf[0] ^= 0xFF
	if _, err := DecodeFrame(buf); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("err = %v, want ErrCorruptFrame", err)
	}
}

func TestEveryBitFlipDetected(t *testing.T) {
	// The whole point of the CRC: any single bit flip — netem's corrupt
	// fault — must be detected.
	buf, err := EncodeFrame(Frame{Type: FrameData, Seq: 99, Timestamp: time.Second, Payload: []byte("remote driving payload")})
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < len(buf)*8; bit++ {
		mut := make([]byte, len(buf))
		copy(mut, buf)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := DecodeFrame(mut); err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
	}
}

func TestDecodeRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		if f, err := DecodeFrame(buf); err == nil {
			// Astronomically unlikely; would indicate a broken check.
			t.Fatalf("random garbage decoded as %+v", f)
		}
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	buf, _ := EncodeFrame(Frame{Type: FrameData, Payload: make([]byte, 100)})
	if _, err := DecodeFrame(buf[:len(buf)-10]); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

func TestFrameTypeString(t *testing.T) {
	if FrameData.String() != "DATA" || FrameAck.String() != "ACK" || FrameDatagram.String() != "DGRAM" {
		t.Fatal("frame type names wrong")
	}
	if FrameType(77).String() == "" {
		t.Fatal("unknown frame type should render")
	}
}
