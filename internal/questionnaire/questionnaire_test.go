package questionnaire

import (
	"strings"
	"testing"

	"teledrive/internal/campaign"
	"teledrive/internal/driver"
)

func TestScoreQoE(t *testing.T) {
	cases := []struct {
		ratio    float64
		crashes  int
		timedOut bool
		want     int
	}{
		{1.0, 0, false, 4}, // clean faulty run
		{1.5, 0, false, 3}, // noticeably worse steering
		{3.0, 0, false, 2}, // much worse
		{1.5, 1, false, 2}, // worse + a crash
		{3.0, 2, true, 1},  // floor
		{1.0, 1, false, 3}, // crash only
	}
	for _, c := range cases {
		if got := ScoreQoE(c.ratio, c.crashes, c.timedOut); got != c.want {
			t.Errorf("ScoreQoE(%v, %d, %v) = %d, want %d", c.ratio, c.crashes, c.timedOut, got, c.want)
		}
	}
}

func TestQoEBounds(t *testing.T) {
	for ratio := 0.5; ratio < 10; ratio += 0.5 {
		for crashes := 0; crashes < 5; crashes++ {
			got := ScoreQoE(ratio, crashes, crashes%2 == 0)
			if got < 1 || got > 5 {
				t.Fatalf("QoE %d out of range", got)
			}
		}
	}
}

func miniResult(t *testing.T) *campaign.Result {
	t.Helper()
	var subs []driver.Profile
	for _, n := range []string{"T5", "T10", "T12"} {
		p, _ := driver.SubjectByName(n)
		subs = append(subs, p)
	}
	res, err := campaign.Run(campaign.Config{Seed: 5, Subjects: subs, ApplyPaperExclusions: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSummarize(t *testing.T) {
	res := miniResult(t)
	s := Summarize(res)
	if s.Subjects != 3 {
		t.Fatalf("subjects = %d", s.Subjects)
	}
	// Profile facts: T5 and T10 are gamers, T12 is not.
	if s.Gaming != 2 {
		t.Fatalf("gaming = %d", s.Gaming)
	}
	if s.RecentGaming != 1 { // T10
		t.Fatalf("recent = %d", s.RecentGaming)
	}
	if s.QoEMean < 1 || s.QoEMean > 5 || s.QoEMin > s.QoEMax {
		t.Fatalf("QoE stats: %+v", s)
	}
	if s.VirtualTestingUseful != 3 {
		t.Fatalf("virtual testing useful = %d, want all (paper: all)", s.VirtualTestingUseful)
	}
	// T10 reports fault visibility; T5/T12 do not.
	if s.FeltDifference != 1 {
		t.Fatalf("felt difference = %d", s.FeltDifference)
	}
	if len(s.PerSubject) != 3 {
		t.Fatalf("per-subject = %d", len(s.PerSubject))
	}
}

func TestSummaryLines(t *testing.T) {
	res := miniResult(t)
	lines := Summarize(res).Lines()
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want the 6 questionnaire answers", len(lines))
	}
	if !strings.Contains(lines[3], "QoE") {
		t.Fatalf("line 4 = %q", lines[3])
	}
}

func TestSkillCorrelation(t *testing.T) {
	res := miniResult(t)
	g, n, gamers, nonGamers := SkillCorrelation(res)
	if gamers != 2 || nonGamers != 1 {
		t.Fatalf("gamers=%d nonGamers=%d", gamers, nonGamers)
	}
	if g <= 0 || n <= 0 {
		t.Fatalf("ratios g=%v n=%v", g, n)
	}
}

func TestProfilesReExport(t *testing.T) {
	if len(Profiles()) != 12 {
		t.Fatal("profiles re-export broken")
	}
}

func TestEmptySummary(t *testing.T) {
	s := Summarize(&campaign.Result{})
	if s.Subjects != 0 || s.QoEMin != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}
