// Package questionnaire implements the paper's §V-E3 post-test
// questionnaire and the §VI-F answer aggregation. The background
// questions (1–3, 6) read the subject profiles; the Quality-of-
// Experience question (4) is synthesized from each subject's measured
// faulty-run degradation relative to their golden run, and question 5
// ("is virtual testing useful?") is uniformly positive, as in the paper.
package questionnaire

import (
	"fmt"

	"teledrive/internal/campaign"
	"teledrive/internal/driver"
)

// Answers is one subject's completed questionnaire.
type Answers struct {
	Subject string
	// Q1: much experience playing video games?
	GamingExperience bool
	RecentGaming     bool
	// Q2: car racing games specifically?
	RacingGames bool
	// Q3: prior experience with the driving station (0/1/2 = none, once,
	// a few times)?
	StationExperience int
	// Q4: QoE of the faulty run compared to the golden run, 1–5.
	QoE int
	// Q5: is virtual testing useful?
	VirtualTestingUseful bool
	// Q6: felt a difference when faults were injected?
	FeltDifference bool
}

// ScoreQoE converts measured degradation into the 1–5 QoE answer. The
// inputs are ratios of the subject's faulty run to their golden run.
func ScoreQoE(srrRatio float64, collisions int, timedOut bool) int {
	score := 4
	if srrRatio > 1.08 {
		score--
	}
	if srrRatio > 1.9 {
		score--
	}
	if collisions > 0 {
		score--
	}
	if timedOut {
		score--
	}
	if score < 1 {
		score = 1
	}
	return score
}

// ForSubject fills the questionnaire for one campaign subject.
func ForSubject(sub campaign.SubjectResult) Answers {
	a := Answers{
		Subject:              sub.Profile.Name,
		GamingExperience:     sub.Profile.GamingExperience,
		RecentGaming:         sub.Profile.RecentGaming,
		RacingGames:          sub.Profile.RacingGames,
		StationExperience:    sub.Profile.StationExperience,
		VirtualTestingUseful: true,
		FeltDifference:       sub.Profile.ReportsFaultVisibility,
	}
	var goldenSRR, faultySRR float64
	collisions := 0
	timedOut := false
	for _, run := range sub.Runs {
		goldenSRR += run.Golden.Analysis.SRRWholeRun
		faultySRR += run.Faulty.Analysis.SRRWholeRun
		collisions += run.Faulty.Outcome.EgoCollisions
		if run.Faulty.Outcome.TimedOut {
			timedOut = true
		}
	}
	ratio := 1.0
	if goldenSRR > 0 {
		ratio = faultySRR / goldenSRR
	}
	a.QoE = ScoreQoE(ratio, collisions, timedOut)
	return a
}

// Summary aggregates the questionnaire over the analysed subjects — the
// §VI-F numbers.
type Summary struct {
	Subjects             int
	Gaming               int // some video-game experience
	RecentGaming         int
	RacingGames          int
	NoStationExperience  int
	StationOnce          int
	StationFewTimes      int
	QoEMean              float64
	QoEMin, QoEMax       int
	VirtualTestingUseful int
	FeltDifference       int
	PerSubject           []Answers
}

// Summarize runs the questionnaire over a campaign result.
func Summarize(res *campaign.Result) Summary {
	s := Summary{QoEMin: 6}
	total := 0
	for _, sub := range res.Analysed() {
		a := ForSubject(sub)
		s.PerSubject = append(s.PerSubject, a)
		s.Subjects++
		if a.GamingExperience {
			s.Gaming++
		}
		if a.RecentGaming {
			s.RecentGaming++
		}
		if a.RacingGames {
			s.RacingGames++
		}
		switch a.StationExperience {
		case 0:
			s.NoStationExperience++
		case 1:
			s.StationOnce++
		default:
			s.StationFewTimes++
		}
		total += a.QoE
		if a.QoE < s.QoEMin {
			s.QoEMin = a.QoE
		}
		if a.QoE > s.QoEMax {
			s.QoEMax = a.QoE
		}
		if a.VirtualTestingUseful {
			s.VirtualTestingUseful++
		}
		if a.FeltDifference {
			s.FeltDifference++
		}
	}
	if s.Subjects > 0 {
		s.QoEMean = float64(total) / float64(s.Subjects)
	} else {
		s.QoEMin = 0
	}
	return s
}

// Lines renders the summary in the §VI-F answer style.
func (s Summary) Lines() []string {
	return []string{
		fmt.Sprintf("1) %d of %d subjects have video-game experience (%d recent)", s.Gaming, s.Subjects, s.RecentGaming),
		fmt.Sprintf("2) %d of %d have played car-racing games specifically", s.RacingGames, s.Subjects),
		fmt.Sprintf("3) %d report no prior driving-station experience, %d used one a few times, %d only once",
			s.NoStationExperience, s.StationFewTimes, s.StationOnce),
		fmt.Sprintf("4) mean QoE of the faulty run is %.2f (min %d, max %d)", s.QoEMean, s.QoEMin, s.QoEMax),
		fmt.Sprintf("5) %d of %d believe virtual testing is useful", s.VirtualTestingUseful, s.Subjects),
		fmt.Sprintf("6) %d of %d report visually noticing the injected faults", s.FeltDifference, s.Subjects),
	}
}

// SkillCorrelation computes the §V-G2 exploratory correlation between
// gaming experience and performance under faults: the mean faulty/golden
// SRR ratio for gamers vs non-gamers. The paper could not analyse this
// for lack of diversity (10 of 11 were gamers); the API exists so a more
// diverse synthetic population can.
func SkillCorrelation(res *campaign.Result) (gamerRatio, nonGamerRatio float64, gamers, nonGamers int) {
	var gSum, nSum float64
	for _, sub := range res.Analysed() {
		var golden, faulty float64
		for _, run := range sub.Runs {
			golden += run.Golden.Analysis.SRRWholeRun
			faulty += run.Faulty.Analysis.SRRWholeRun
		}
		if golden <= 0 {
			continue
		}
		ratio := faulty / golden
		if sub.Profile.GamingExperience {
			gSum += ratio
			gamers++
		} else {
			nSum += ratio
			nonGamers++
		}
	}
	if gamers > 0 {
		gamerRatio = gSum / float64(gamers)
	}
	if nonGamers > 0 {
		nonGamerRatio = nSum / float64(nonGamers)
	}
	return gamerRatio, nonGamerRatio, gamers, nonGamers
}

// Profiles re-exports the subject set for convenience in examples.
func Profiles() []driver.Profile { return driver.Subjects() }
