package metrics

import (
	"math"
	"time"
)

// DefaultTTCGatingDistance reproduces the paper's §VI-C rule: TTC is
// only computed while the relative distance between lead and ego is at
// most 100 m (longer distances trivially give huge TTC at urban speeds).
const DefaultTTCGatingDistance = 100.0

// DefaultTTCThreshold is the 6 s safety threshold the paper adopts from
// Vogel [13]: TTC > 6 s is not considered dangerous.
const DefaultTTCThreshold = 6.0

// MinClosingSpeed gates TTC sampling: below this closing speed the pair
// is effectively co-moving and TTC is numerically meaningless (a rail
// lead holding speed exactly would otherwise produce 10⁵-second TTCs;
// human-driven pairs in the paper always jitter above this).
const MinClosingSpeed = 1.0

// TTC computes the paper's §V-G1 time-to-collision for one instant:
//
//	TTC = (xLead − xEgo) / (vEgo − vLead)
//
// with positions measured along the road. It returns +Inf when the
// vehicles are not closing (vEgo ≤ vLead).
func TTC(xEgo, vEgo, xLead, vLead float64) float64 {
	closing := vEgo - vLead
	if closing <= 0 {
		return math.Inf(1)
	}
	gap := xLead - xEgo
	if gap < 0 {
		return 0
	}
	return gap / closing
}

// TTCCollector accumulates gated TTC samples over a run.
type TTCCollector struct {
	// GatingDistance defaults to DefaultTTCGatingDistance when 0.
	GatingDistance float64
	samples        []Sample
	exposure       time.Duration // time with 0 < TTC < threshold (TET)
	threshold      float64
	lastTime       time.Duration
	haveLast       bool
}

// NewTTCCollector creates a collector with the paper's gating distance
// and threshold.
func NewTTCCollector() *TTCCollector {
	return &TTCCollector{GatingDistance: DefaultTTCGatingDistance, threshold: DefaultTTCThreshold}
}

// SetThreshold overrides the TET/violation threshold (seconds).
func (c *TTCCollector) SetThreshold(seconds float64) { c.threshold = seconds }

// Record ingests one tick of ego/lead road positions (metres along the
// route) and speeds. Samples outside the gating distance or with no
// lead (xLead = NaN) are skipped.
func (c *TTCCollector) Record(now time.Duration, xEgo, vEgo, xLead, vLead float64) {
	gate := c.GatingDistance
	if gate == 0 { //lint:allow floateq zero-value config sentinel meaning "use the default"; never a computed value
		gate = DefaultTTCGatingDistance
	}
	if math.IsNaN(xLead) || math.IsNaN(vLead) {
		c.haveLast = false
		return
	}
	dist := xLead - xEgo
	if dist < 0 || dist > gate {
		c.haveLast = false
		return
	}
	if vEgo-vLead < MinClosingSpeed {
		c.haveLast = false
		return
	}
	ttc := TTC(xEgo, vEgo, xLead, vLead)
	if math.IsInf(ttc, 1) {
		c.haveLast = false
		return
	}
	c.samples = append(c.samples, Sample{Time: now, Value: ttc})
	if c.haveLast && ttc > 0 && ttc < c.threshold {
		c.exposure += now - c.lastTime
	}
	c.lastTime = now
	c.haveLast = true
}

// Samples returns the collected gated TTC samples.
func (c *TTCCollector) Samples() []Sample { return c.samples }

// Result summarizes the collected TTC samples.
type TTCResult struct {
	// Valid is false when no gated samples were collected (the paper's
	// "-" cells: fault never injected or distance always > 100 m).
	Valid bool
	// N is the number of gated samples.
	N   int
	Min float64
	Avg float64
	Max float64
	// Violations counts samples with 0 < TTC < threshold.
	Violations int
	// TET is the total time exposed below the threshold.
	TET time.Duration
}

// Result computes the summary.
func (c *TTCCollector) Result() TTCResult {
	if len(c.samples) == 0 {
		return TTCResult{}
	}
	st := Stats(Values(c.samples))
	violations := 0
	for _, s := range c.samples {
		if s.Value > 0 && s.Value < c.threshold {
			violations++
		}
	}
	return TTCResult{
		Valid:      true,
		N:          st.N,
		Min:        st.Min,
		Avg:        st.Mean,
		Max:        st.Max,
		Violations: violations,
		TET:        c.exposure,
	}
}

// Merge combines two TTC results as if their samples were pooled: min
// of mins, max of maxs, sample-weighted average, summed violations and
// exposure. Used to aggregate per-scenario results into per-subject
// table rows.
func Merge(a, b TTCResult) TTCResult {
	switch {
	case !a.Valid:
		return b
	case !b.Valid:
		return a
	}
	out := TTCResult{
		Valid:      true,
		N:          a.N + b.N,
		Min:        math.Min(a.Min, b.Min),
		Max:        math.Max(a.Max, b.Max),
		Violations: a.Violations + b.Violations,
		TET:        a.TET + b.TET,
	}
	out.Avg = (a.Avg*float64(a.N) + b.Avg*float64(b.N)) / float64(out.N)
	return out
}

// HeadwayTime returns the time-headway gap/v for one instant, or +Inf
// at standstill.
func HeadwayTime(gap, v float64) float64 {
	if v <= 0 {
		return math.Inf(1)
	}
	return gap / v
}
