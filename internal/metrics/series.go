// Package metrics implements the road-safety metrics of the paper's
// §V-G: Time-To-Collision (TTC) with the ≤100 m gating used in §VI-C,
// Steering Reversal Rate (SRR) per SAE J2944 (low-pass filter →
// stationary points → reversal count), Time Exposed TTC (TET), headway
// time, and the task-time measurement behind Fig 4.
package metrics

import (
	"math"
	"time"
)

// Sample is one time-stamped scalar observation.
type Sample struct {
	Time  time.Duration
	Value float64
}

// SeriesStats summarizes a scalar series.
type SeriesStats struct {
	N    int
	Min  float64
	Max  float64
	Mean float64
	Std  float64
}

// Stats computes summary statistics. An empty input yields a zero
// struct with N == 0.
func Stats(values []float64) SeriesStats {
	if len(values) == 0 {
		return SeriesStats{}
	}
	s := SeriesStats{N: len(values), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	if len(values) > 1 {
		var sq float64
		for _, v := range values {
			d := v - s.Mean
			sq += d * d
		}
		s.Std = math.Sqrt(sq / float64(len(values)-1))
	}
	return s
}

// Values extracts the value column of a sample series.
func Values(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.Value
	}
	return out
}
