package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestStatsBasics(t *testing.T) {
	s := Stats([]float64{2, 4, 6})
	if s.N != 3 || s.Min != 2 || s.Max != 6 || s.Mean != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", s.Std)
	}
	if z := Stats(nil); z.N != 0 {
		t.Fatalf("empty stats = %+v", z)
	}
}

func TestStatsBoundsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Bound magnitudes so the mean cannot overflow.
				clean = append(clean, math.Mod(v, 1e9))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Stats(clean)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTTCFormula(t *testing.T) {
	// Paper §V-G1: ego at 0 doing 20, lead at 60 doing 10 → 60/10 = 6 s.
	if got := TTC(0, 20, 60, 10); got != 6 {
		t.Fatalf("TTC = %v, want 6", got)
	}
	// Not closing → +Inf.
	if got := TTC(0, 10, 60, 10); !math.IsInf(got, 1) {
		t.Fatalf("TTC same speeds = %v, want +Inf", got)
	}
	if got := TTC(0, 10, 60, 15); !math.IsInf(got, 1) {
		t.Fatalf("TTC opening = %v, want +Inf", got)
	}
	// Overlapping positions → 0.
	if got := TTC(10, 20, 5, 0); got != 0 {
		t.Fatalf("TTC with negative gap = %v, want 0", got)
	}
}

func TestTTCCollectorGating(t *testing.T) {
	c := NewTTCCollector()
	// Beyond 100 m: not collected.
	c.Record(0, 0, 20, 150, 10)
	if len(c.Samples()) != 0 {
		t.Fatal("sample collected beyond gating distance")
	}
	// Within 100 m and closing: collected.
	c.Record(time.Second, 0, 20, 60, 10)
	if len(c.Samples()) != 1 {
		t.Fatal("sample within gate not collected")
	}
	// No lead (NaN): skipped.
	c.Record(2*time.Second, 0, 20, math.NaN(), math.NaN())
	if len(c.Samples()) != 1 {
		t.Fatal("NaN lead collected")
	}
}

// TestTTCCollectorBoundaries pins the §VI-C gating rules exactly at
// their edges: the gate is inclusive on both the 100 m distance and the
// minimum closing speed, and co-moving or lead-less ticks are skipped
// without poisoning the statistics.
func TestTTCCollectorBoundaries(t *testing.T) {
	t.Run("closing speed exactly MinClosingSpeed collected", func(t *testing.T) {
		c := NewTTCCollector()
		// vEgo − vLead = 1.0 = MinClosingSpeed: the guard is <, so the
		// boundary sample is collected.
		c.Record(0, 0, 11, 50, 11-MinClosingSpeed)
		if len(c.Samples()) != 1 {
			t.Fatal("closing speed exactly MinClosingSpeed was skipped")
		}
		if got := c.Samples()[0].Value; math.Abs(got-50) > 1e-12 {
			t.Fatalf("TTC at boundary closing speed = %v, want 50", got)
		}
	})
	t.Run("closing speed just below MinClosingSpeed skipped", func(t *testing.T) {
		c := NewTTCCollector()
		c.Record(0, 0, 11, 50, 11-MinClosingSpeed+1e-9)
		if len(c.Samples()) != 0 {
			t.Fatal("sub-threshold closing speed collected")
		}
	})
	t.Run("distance exactly at 100 m gate collected", func(t *testing.T) {
		c := NewTTCCollector()
		c.Record(0, 0, 20, DefaultTTCGatingDistance, 10)
		if len(c.Samples()) != 1 {
			t.Fatal("distance exactly at the gate was skipped")
		}
		c2 := NewTTCCollector()
		c2.Record(0, 0, 20, DefaultTTCGatingDistance+1e-9, 10)
		if len(c2.Samples()) != 0 {
			t.Fatal("distance just beyond the gate collected")
		}
	})
	t.Run("co-moving pair skipped", func(t *testing.T) {
		c := NewTTCCollector()
		c.Record(0, 0, 15, 50, 15) // identical speeds
		c.Record(0, 0, 15, 50, 16) // opening
		if len(c.Samples()) != 0 {
			t.Fatal("co-moving/opening pair collected")
		}
	})
	t.Run("NaN lead resets exposure continuity", func(t *testing.T) {
		c := NewTTCCollector()
		// Below-threshold sample, NaN gap, below-threshold sample: the
		// NaN breaks haveLast, so no TET accrues across the gap.
		c.Record(0, 0, 20, 30, 10)
		c.Record(time.Second, 0, 20, math.NaN(), math.NaN())
		c.Record(2*time.Second, 0, 20, 30, 10)
		if res := c.Result(); res.TET != 0 {
			t.Fatalf("TET accrued across a lead-less gap: %v", res.TET)
		}
	})
}

// TestTTCResultOrderIndependent pins that the summary statistics are
// functions of the sample multiset: N, Min, Avg, Max and Violations
// must not change when the same ticks arrive in a different order.
// (TET is sequence-defined — exposure between consecutive ticks — and
// is deliberately excluded.)
func TestTTCResultOrderIndependent(t *testing.T) {
	// Exactly representable TTC values so Avg sums are exact in any
	// order: gap/closing with closing 10 and gaps in multiples of 2.5.
	gaps := []float64{25, 50, 75, 100, 40, 80, 30, 60}
	collect := func(order []int) TTCResult {
		c := NewTTCCollector()
		now := time.Duration(0)
		for _, i := range order {
			c.Record(now, 0, 20, gaps[i], 10)
			now += 20 * time.Millisecond
		}
		return c.Result()
	}
	fwd := make([]int, len(gaps))
	rev := make([]int, len(gaps))
	shuf := []int{3, 0, 6, 2, 7, 1, 5, 4}
	for i := range gaps {
		fwd[i] = i
		rev[i] = len(gaps) - 1 - i
	}
	a, b, c := collect(fwd), collect(rev), collect(shuf)
	for _, other := range []TTCResult{b, c} {
		if a.N != other.N || a.Violations != other.Violations {
			t.Fatalf("counts differ across orders: %+v vs %+v", a, other)
		}
		if a.Min != other.Min || a.Max != other.Max || a.Avg != other.Avg { //lint:allow floateq identical multisets of exactly-representable values must agree bit-for-bit
			t.Fatalf("stats differ across orders: %+v vs %+v", a, other)
		}
	}
}

func TestTTCCollectorResult(t *testing.T) {
	c := NewTTCCollector()
	tick := 20 * time.Millisecond
	now := time.Duration(0)
	// 5 s of closing at TTC descending 10 → 2 s.
	for i := 0; i <= 100; i++ {
		ttcVal := 10 - 0.08*float64(i)
		// Construct positions giving that TTC with closing speed 10.
		c.Record(now, 0, 20, ttcVal*10, 10)
		now += tick
	}
	res := c.Result()
	if !res.Valid {
		t.Fatal("result invalid with samples")
	}
	if math.Abs(res.Max-10) > 1e-9 || math.Abs(res.Min-2) > 1e-9 {
		t.Fatalf("min/max = %v/%v", res.Min, res.Max)
	}
	if res.Violations == 0 {
		t.Fatal("no violations counted despite TTC < 6")
	}
	if res.TET <= 0 {
		t.Fatal("TET not accumulated")
	}
	// Empty collector: invalid result ("-" cell in Table III).
	if r := NewTTCCollector().Result(); r.Valid {
		t.Fatal("empty collector reported valid")
	}
}

func TestTETOnlyBelowThreshold(t *testing.T) {
	c := NewTTCCollector()
	tick := 100 * time.Millisecond
	now := time.Duration(0)
	// 1 s at TTC 8 (above threshold), then 1 s at TTC 3 (below).
	for i := 0; i < 10; i++ {
		c.Record(now, 0, 20, 80, 10)
		now += tick
	}
	for i := 0; i < 10; i++ {
		c.Record(now, 0, 20, 30, 10)
		now += tick
	}
	res := c.Result()
	if res.TET < 900*time.Millisecond || res.TET > 1100*time.Millisecond {
		t.Fatalf("TET = %v, want ≈1s", res.TET)
	}
}

func TestHeadwayTime(t *testing.T) {
	if got := HeadwayTime(40, 20); got != 2 {
		t.Fatalf("headway = %v", got)
	}
	if !math.IsInf(HeadwayTime(40, 0), 1) {
		t.Fatal("headway at standstill should be +Inf")
	}
}

func TestButterworthDCGain(t *testing.T) {
	// A constant signal passes unchanged (DC gain 1).
	x := make([]float64, 500)
	for i := range x {
		x[i] = 5
	}
	y := Butterworth2LowPass(x, 0.6, 50)
	if math.Abs(y[len(y)-1]-5) > 1e-6 {
		t.Fatalf("DC gain: %v, want 5", y[len(y)-1])
	}
}

func TestButterworthAttenuatesHighFrequency(t *testing.T) {
	const fs = 50.0
	n := 1000
	low := make([]float64, n)  // 0.2 Hz
	high := make([]float64, n) // 10 Hz
	for i := 0; i < n; i++ {
		ts := float64(i) / fs
		low[i] = math.Sin(2 * math.Pi * 0.2 * ts)
		high[i] = math.Sin(2 * math.Pi * 10 * ts)
	}
	ampl := func(x []float64) float64 {
		m := 0.0
		for _, v := range x[n/2:] { // steady state
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return m
	}
	lowOut := ampl(Butterworth2LowPass(low, 0.6, fs))
	highOut := ampl(Butterworth2LowPass(high, 0.6, fs))
	if lowOut < 0.8 {
		t.Fatalf("0.2 Hz attenuated to %v, want ≈1", lowOut)
	}
	if highOut > 0.05 {
		t.Fatalf("10 Hz only attenuated to %v, want ≈0", highOut)
	}
}

func TestCountReversalsSinusoid(t *testing.T) {
	// A 0.25 Hz sinusoid of ±10° for 60 s has 2 reversals per period
	// (once fully swinging each way) minus edge effects: 0.25*60*2 = 30.
	const fs = 50.0
	n := int(60 * fs)
	x := make([]float64, n)
	for i := range x {
		x[i] = 10 * math.Sin(2*math.Pi*0.25*float64(i)/fs)
	}
	got := CountReversals(x, 3)
	if got < 28 || got > 31 {
		t.Fatalf("reversals = %d, want ≈30", got)
	}
}

func TestCountReversalsIgnoresSmallWiggles(t *testing.T) {
	// ±1° wiggles under a 3° threshold: zero reversals.
	const fs = 50.0
	n := int(30 * fs)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 * math.Sin(2*math.Pi*1*float64(i)/fs)
	}
	if got := CountReversals(x, 3); got != 0 {
		t.Fatalf("reversals = %d, want 0", got)
	}
}

func TestCountReversalsEdgeCases(t *testing.T) {
	if CountReversals(nil, 3) != 0 {
		t.Fatal("nil signal")
	}
	if CountReversals([]float64{1}, 3) != 0 {
		t.Fatal("single sample")
	}
	if CountReversals([]float64{1, 2, 3}, 0) != 0 {
		t.Fatal("zero threshold must not count")
	}
	// Monotonic signal: no reversals.
	mono := []float64{0, 5, 10, 15, 20}
	if got := CountReversals(mono, 3); got != 0 {
		t.Fatalf("monotonic reversals = %d", got)
	}
}

func TestComputeSRREndToEnd(t *testing.T) {
	cfg := DefaultSRRConfig()
	// Steering oscillation at 0.3 Hz, ±2% of a 900° wheel = ±9°,
	// plus high-frequency sensor noise that the filter must remove.
	rng := rand.New(rand.NewSource(1))
	n := int(120 * cfg.SampleRate) // 2 minutes
	steer := make([]float64, n)
	for i := range steer {
		ts := float64(i) / cfg.SampleRate
		steer[i] = 0.02*math.Sin(2*math.Pi*0.3*ts) + 0.002*rng.NormFloat64()
	}
	res, err := ComputeSRR(steer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 0.3 Hz → 0.6 reversals/s → 36/min.
	if res.RatePerMin < 32 || res.RatePerMin > 40 {
		t.Fatalf("SRR = %.1f/min, want ≈36", res.RatePerMin)
	}
	if res.Duration != 2*time.Minute {
		t.Fatalf("duration = %v", res.Duration)
	}
	if len(res.Filtered) != n {
		t.Fatalf("filtered length = %d", len(res.Filtered))
	}
}

func TestComputeSRRValidation(t *testing.T) {
	if _, err := ComputeSRR([]float64{0}, SRRConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := DefaultSRRConfig()
	bad.CutoffHz = 100 // above Nyquist of 25
	if _, err := ComputeSRR([]float64{0}, bad); err == nil {
		t.Fatal("cutoff above Nyquist accepted")
	}
	// Empty signal: zero result, no error.
	res, err := ComputeSRR(nil, DefaultSRRConfig())
	if err != nil || res.Reversals != 0 {
		t.Fatalf("empty signal: %+v, %v", res, err)
	}
}

func TestSRRMonotonicInDisturbance(t *testing.T) {
	// More oscillatory steering must never yield a lower SRR: the core
	// sanity property behind Table IV.
	cfg := DefaultSRRConfig()
	rate := func(amplitude float64) float64 {
		n := int(60 * cfg.SampleRate)
		steer := make([]float64, n)
		for i := range steer {
			ts := float64(i) / cfg.SampleRate
			steer[i] = amplitude * math.Sin(2*math.Pi*0.4*ts)
		}
		res, err := ComputeSRR(steer, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.RatePerMin
	}
	small := rate(0.004) // ±1.8°: below threshold
	large := rate(0.03)  // ±13.5°: well above
	if small != 0 {
		t.Fatalf("sub-threshold oscillation SRR = %v, want 0", small)
	}
	if large <= small {
		t.Fatalf("SRR not increasing with amplitude: %v vs %v", large, small)
	}
}

func TestTaskTimer(t *testing.T) {
	tt := TaskTimer{FromStation: 100, ToStation: 200}
	if _, ok := tt.Duration(); ok {
		t.Fatal("duration before traversal")
	}
	tt.Record(0, 50)
	tt.Record(10*time.Second, 100)
	tt.Record(20*time.Second, 150)
	if _, ok := tt.Duration(); ok {
		t.Fatal("duration before exit")
	}
	tt.Record(29*time.Second, 205)
	d, ok := tt.Duration()
	if !ok || d != 19*time.Second {
		t.Fatalf("duration = %v, %v", d, ok)
	}
	// Further records don't change it.
	tt.Record(60*time.Second, 500)
	if d2, _ := tt.Duration(); d2 != d {
		t.Fatal("duration changed after exit")
	}
}

func TestValuesExtraction(t *testing.T) {
	s := []Sample{{Time: 0, Value: 1}, {Time: time.Second, Value: 2}}
	v := Values(s)
	if len(v) != 2 || v[0] != 1 || v[1] != 2 {
		t.Fatalf("values = %v", v)
	}
}
