package metrics

import (
	"fmt"
	"math"
	"time"
)

// SRRConfig parameterizes the SAE J2944 steering-reversal-rate
// computation (§V-G2: "apply a low-pass filter to remove any noise in
// the steering signal, find the stationary points, and then count the
// reversals").
type SRRConfig struct {
	// SampleRate of the steering signal, Hz.
	SampleRate float64
	// CutoffHz of the 2nd-order Butterworth low-pass; J2944 recommends
	// 0.6 Hz for reversal counting.
	CutoffHz float64
	// ThresholdDeg is the minimum steering-WHEEL angle swing (degrees)
	// that counts as a reversal. J2944 uses gaps in the 2–5° range.
	ThresholdDeg float64
	// WheelRangeDeg is the wheel's full lock-to-lock range; the paper's
	// Logitech G27 is 900°. Normalized steer ±1 maps to ±Range/2.
	WheelRangeDeg float64
}

// DefaultSRRConfig matches the paper's driving station at the 50 Hz
// logging rate.
func DefaultSRRConfig() SRRConfig {
	return SRRConfig{SampleRate: 50, CutoffHz: 0.6, ThresholdDeg: 3, WheelRangeDeg: 900}
}

// Validate reports configuration errors.
func (c SRRConfig) Validate() error {
	switch {
	case c.SampleRate <= 0:
		return fmt.Errorf("metrics: SRR sample rate %v must be positive", c.SampleRate)
	case c.CutoffHz <= 0 || c.CutoffHz >= c.SampleRate/2:
		return fmt.Errorf("metrics: SRR cutoff %v outside (0, Nyquist)", c.CutoffHz)
	case c.ThresholdDeg <= 0:
		return fmt.Errorf("metrics: SRR threshold %v must be positive", c.ThresholdDeg)
	case c.WheelRangeDeg <= 0:
		return fmt.Errorf("metrics: wheel range %v must be positive", c.WheelRangeDeg)
	}
	return nil
}

// SRRResult is the outcome of an SRR computation.
type SRRResult struct {
	Reversals int
	Duration  time.Duration
	// RatePerMin is the paper's Table IV unit: reversals per minute.
	RatePerMin float64
	// Filtered is the low-passed wheel-angle signal in degrees, kept
	// for steering-profile plots (Fig 4).
	Filtered []float64
}

// ComputeSRR runs the J2944 pipeline over a normalized steering signal
// (each sample in [-1, 1], sampled at cfg.SampleRate).
func ComputeSRR(steer []float64, cfg SRRConfig) (SRRResult, error) {
	if err := cfg.Validate(); err != nil {
		return SRRResult{}, err
	}
	if len(steer) == 0 {
		return SRRResult{}, nil
	}
	// Convert to wheel degrees.
	deg := make([]float64, len(steer))
	halfRange := cfg.WheelRangeDeg / 2
	for i, s := range steer {
		deg[i] = s * halfRange
	}
	filtered := Butterworth2LowPass(deg, cfg.CutoffHz, cfg.SampleRate)
	reversals := CountReversals(filtered, cfg.ThresholdDeg)
	dur := time.Duration(float64(len(steer)) / cfg.SampleRate * float64(time.Second))
	res := SRRResult{Reversals: reversals, Duration: dur, Filtered: filtered}
	if minutes := dur.Minutes(); minutes > 0 {
		res.RatePerMin = float64(reversals) / minutes
	}
	return res, nil
}

// Butterworth2LowPass filters x with a 2nd-order Butterworth low-pass
// (bilinear transform design). The first samples are seeded with the
// initial value to avoid a start-up transient.
func Butterworth2LowPass(x []float64, cutoffHz, sampleRate float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	w := math.Tan(math.Pi * cutoffHz / sampleRate)
	n := 1 / (1 + math.Sqrt2*w + w*w)
	b0 := w * w * n
	b1 := 2 * b0
	b2 := b0
	a1 := 2 * n * (w*w - 1)
	a2 := n * (1 - math.Sqrt2*w + w*w)

	y := make([]float64, len(x))
	xm1, xm2 := x[0], x[0]
	ym1, ym2 := x[0], x[0]
	for i, xi := range x {
		yi := b0*xi + b1*xm1 + b2*xm2 - a1*ym1 - a2*ym2
		y[i] = yi
		xm2, xm1 = xm1, xi
		ym2, ym1 = ym1, yi
	}
	return y
}

// CountReversals counts direction changes of at least threshold in the
// (already filtered) signal: the classic turning-point algorithm. A
// reversal is recorded each time the signal, having moved at least
// threshold away from the last extreme in one direction, moves at least
// threshold back in the other.
func CountReversals(signal []float64, threshold float64) int {
	if len(signal) < 2 || threshold <= 0 {
		return 0
	}
	const (
		dirNone = iota
		dirUp
		dirDown
	)
	dir := dirNone
	extreme := signal[0]
	count := 0
	for _, v := range signal[1:] {
		switch dir {
		case dirNone:
			if v >= extreme+threshold {
				dir = dirUp
				extreme = v
			} else if v <= extreme-threshold {
				dir = dirDown
				extreme = v
			}
		case dirUp:
			if v > extreme {
				extreme = v
			} else if v <= extreme-threshold {
				// Swing down by ≥ threshold: one reversal.
				count++
				dir = dirDown
				extreme = v
			}
		case dirDown:
			if v < extreme {
				extreme = v
			} else if v >= extreme+threshold {
				count++
				dir = dirUp
				extreme = v
			}
		}
	}
	return count
}

// TaskTimer measures how long the driver takes to traverse a route
// segment — the quantity behind Fig 4's "19 s in the golden run vs 33 s
// in the faulty run" observation.
type TaskTimer struct {
	FromStation, ToStation float64

	entered, exited bool
	enterAt, exitAt time.Duration
}

// Record ingests the ego's route station at a time.
func (t *TaskTimer) Record(now time.Duration, station float64) {
	if !t.entered && station >= t.FromStation {
		t.entered = true
		t.enterAt = now
	}
	if t.entered && !t.exited && station >= t.ToStation {
		t.exited = true
		t.exitAt = now
	}
}

// Duration returns the traversal time; ok is false when the segment was
// not fully traversed.
func (t *TaskTimer) Duration() (time.Duration, bool) {
	if !t.entered || !t.exited {
		return 0, false
	}
	return t.exitAt - t.enterAt, true
}
